//! End-to-end tests of the `gals-serve` wire protocol and server
//! semantics: malformed input, concurrent clients, heterogeneous
//! (mixed-window / mixed-priority) streams through the shared job
//! scheduler, deadline expiry, determinism against the direct explorer
//! path, and clean shutdown with in-flight work.

use std::net::{Shutdown, TcpStream};

use gals_core::{ControlPolicy, MachineConfig, McdConfig, Simulator};
use gals_serve::{Client, Priority, Request, RequestKind, Response, ServeConfig, Server};
use gals_workloads::suite;

fn start_server() -> Server {
    Server::start(ServeConfig::default()).expect("bind ephemeral port")
}

fn phase_request(id: &str, bench: &str, window: u64) -> Request {
    Request::new(
        id,
        RequestKind::RunConfig {
            bench: bench.to_string(),
            mode: "phase".to_string(),
            cfg: None,
            policy: Some(ControlPolicy::PaperArgmin),
            window,
        },
    )
}

fn prog_request(id: &str, bench: &str, cfg: usize, window: u64) -> Request {
    Request::new(
        id,
        RequestKind::RunConfig {
            bench: bench.to_string(),
            mode: "prog".to_string(),
            cfg: Some(cfg),
            policy: None,
            window,
        },
    )
}

#[test]
fn malformed_requests_get_error_lines() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for bad in [
        "not json at all",
        "{\"op\":\"teleport\",\"id\":\"x\"}",
        "{\"op\":\"run_config\",\"id\":\"x\",\"bench\":\"gzip\",\"mode\":\"sync\"}",
        "{\"op\":\"run_config\",\"id\":\"x\",\"bench\":\"no_such_bench\",\"mode\":\"phase\"}",
        "{\"op\":\"run_config\",\"id\":\"x\",\"bench\":\"gzip\",\"mode\":\"sync\",\"cfg\":999999}",
        "{\"op\":\"status\",\"id\":\"x\",\"priority\":\"urgent\"}",
        "{\"op\":\"status\",\"id\":\"x\",\"deadline_ms\":-1}",
    ] {
        client.send_raw(bad).unwrap();
        match client.read_response().unwrap() {
            Response::Error { message, .. } => {
                assert!(!message.is_empty(), "{bad:?} should carry a reason")
            }
            other => panic!("{bad:?} should produce an error line, got {other:?}"),
        }
    }
    // The connection survives malformed traffic: a well-formed request
    // still works.
    let responses = client
        .request(&phase_request("ok", "adpcm_encode", 500))
        .unwrap();
    assert!(matches!(responses.last(), Some(Response::Done { .. })));
    server.shutdown();
}

#[test]
fn truncated_request_line_is_reported() {
    let server = start_server();
    let addr = server.local_addr();
    let stream = TcpStream::connect(addr).unwrap();
    use std::io::Write;
    let mut w = stream.try_clone().unwrap();
    w.write_all(b"{\"op\":\"run_config\",\"id\":\"t\",\"ben")
        .unwrap();
    w.flush().unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    use std::io::Read;
    let mut buf = String::new();
    let mut r = stream.try_clone().unwrap();
    r.read_to_string(&mut buf).unwrap();
    let resp = Response::parse(buf.trim()).unwrap();
    match resp {
        Response::Error { message, .. } => assert!(message.contains("truncated"), "{message}"),
        other => panic!("expected truncation error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_share_one_simulation() {
    let server = start_server();
    let addr = server.local_addr();
    const CLIENTS: usize = 10;
    let window = 800;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let responses = client
                    .request(&phase_request(&format!("c{c}"), "gzip", window))
                    .unwrap();
                assert_eq!(responses.len(), 2, "one partial + done");
                match &responses[0] {
                    Response::Partial { runtime_ns, id, .. } => {
                        assert_eq!(id, &format!("c{c}"));
                        *runtime_ns
                    }
                    other => panic!("expected partial, got {other:?}"),
                }
            })
        })
        .collect();
    let runtimes: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        runtimes.windows(2).all(|w| w[0] == w[1]),
        "all clients must see the identical deterministic runtime: {runtimes:?}"
    );
    // Ten clients, one distinct configuration: exactly one simulation
    // ran; everyone else was served by in-flight dedupe or the cache.
    assert_eq!(server.simulated_count(), 1);

    // And the status op agrees.
    let mut client = Client::connect(addr).unwrap();
    let responses = client
        .request(&Request::new("st", RequestKind::Status))
        .unwrap();
    match &responses[0] {
        Response::Status { counters, .. } => {
            let get = |name: &str| {
                counters
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| panic!("missing counter {name}"))
            };
            assert_eq!(get("simulated"), 1.0);
            assert!(get("requests") >= CLIENTS as f64);
            assert_eq!(get("admitted_jobs"), CLIENTS as f64);
            assert_eq!(get("expired"), 0.0);
            assert!(get("workers") >= 1.0);
        }
        other => panic!("expected status, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn server_results_bit_identical_to_direct_runs() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let window = 1_500;

    // Through the server.
    let responses = client
        .request(&phase_request("d1", "apsi", window))
        .unwrap();
    let served = match &responses[0] {
        Response::Partial { runtime_ns, .. } => *runtime_ns,
        other => panic!("expected partial, got {other:?}"),
    };

    // Directly through the simulator (what Explorer sweeps execute).
    let spec = suite::by_name("apsi").unwrap();
    let direct = Simulator::new(
        MachineConfig::phase_adaptive(McdConfig::smallest())
            .with_control(ControlPolicy::PaperArgmin),
    )
    .run(&mut spec.stream(), window)
    .runtime_ns();

    assert_eq!(
        served.to_bits(),
        direct.to_bits(),
        "server path must be bit-identical to the direct path"
    );
    server.shutdown();
}

/// The tentpole acceptance case: one heterogeneous stream — every
/// client a different window, mixed machine styles and policies, mixed
/// priorities — goes through the single shared scheduler in one pass
/// (no per-window serialization), and every result is bit-identical to
/// the direct simulator run of the same configuration.
#[test]
fn mixed_window_mixed_priority_stream_is_one_scheduler_pass() {
    let server = start_server();
    let addr = server.local_addr();
    const CLIENTS: usize = 8;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                // Per-client window and priority: all different, all in
                // flight at once.
                let window = 300 + 150 * c as u64;
                let priority = match c % 3 {
                    0 => Priority::Low,
                    1 => Priority::Normal,
                    _ => Priority::High,
                };
                let mut req = if c % 2 == 0 {
                    phase_request(&format!("m{c}"), "gzip", window)
                } else {
                    prog_request(&format!("m{c}"), "art", c * 17, window)
                };
                req.priority = priority;
                let mut client = Client::connect(addr).unwrap();
                let responses = client.request(&req).unwrap();
                assert_eq!(responses.len(), 2, "one partial + done");
                let served = match &responses[0] {
                    Response::Partial { runtime_ns, .. } => *runtime_ns,
                    other => panic!("expected partial, got {other:?}"),
                };
                match responses.last().unwrap() {
                    Response::Done {
                        results, expired, ..
                    } => {
                        assert_eq!((*results, *expired), (1, 0));
                    }
                    other => panic!("expected done, got {other:?}"),
                }
                (c, window, served)
            })
        })
        .collect();
    let outcomes: Vec<(usize, u64, f64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Eight distinct (config, window) pairs: no dedupe is possible, so
    // the scheduler executed all eight as independent jobs of one queue.
    assert_eq!(server.simulated_count(), CLIENTS as u64);
    for (c, window, served) in outcomes {
        let direct = if c % 2 == 0 {
            Simulator::new(
                MachineConfig::phase_adaptive(McdConfig::smallest())
                    .with_control(ControlPolicy::PaperArgmin),
            )
            .run(&mut suite::by_name("gzip").unwrap().stream(), window)
            .runtime_ns()
        } else {
            let cfg = McdConfig::enumerate()[c * 17];
            Simulator::new(MachineConfig::program_adaptive(cfg))
                .run(&mut suite::by_name("art").unwrap().stream(), window)
                .runtime_ns()
        };
        assert_eq!(
            served.to_bits(),
            direct.to_bits(),
            "client {c} at window {window}: scheduling order must not affect results"
        );
    }
    server.shutdown();
}

#[test]
fn deadline_zero_expires_uncached_and_serves_cached() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // An uncached configuration with an already-passed deadline: the
    // worker must not simulate it — typed expiry instead.
    let mut req = prog_request("e1", "em3d", 42, 700);
    req.deadline_ms = Some(0);
    let responses = client.request(&req).unwrap();
    assert_eq!(responses.len(), 2);
    assert!(
        matches!(&responses[0], Response::Expired { id, .. } if id == "e1"),
        "expected expired frame, got {:?}",
        responses[0]
    );
    assert!(matches!(
        responses.last(),
        Some(Response::Done {
            results: 0,
            expired: 1,
            ..
        })
    ));
    assert_eq!(server.simulated_count(), 0);
    assert_eq!(server.expired_count(), 1);

    // Without a deadline the same job simulates...
    let responses = client
        .request(&prog_request("e2", "em3d", 42, 700))
        .unwrap();
    assert!(matches!(
        &responses[0],
        Response::Partial { cached: false, .. }
    ));
    // ...and once cached, even a zero deadline is served (a hit costs
    // nothing — deadline_ms: 0 is the cache-only probe).
    let mut req = prog_request("e3", "em3d", 42, 700);
    req.deadline_ms = Some(0);
    let responses = client.request(&req).unwrap();
    assert!(
        matches!(&responses[0], Response::Partial { cached: true, .. }),
        "cache hit must beat the deadline, got {:?}",
        responses[0]
    );
    server.shutdown();
}

#[test]
fn sweep_streams_every_config_and_policy_compare_runs() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let responses = client
        .request(&Request::new(
            "sw",
            RequestKind::Sweep {
                bench: "adpcm_encode".into(),
                mode: "prog".into(),
                window: 200,
            },
        ))
        .unwrap();
    assert_eq!(responses.len(), 257, "256 partials + done");
    assert!(matches!(
        responses.last(),
        Some(Response::Done {
            results: 256,
            expired: 0,
            ..
        })
    ));
    let mut keys: Vec<&str> = responses
        .iter()
        .filter_map(|r| match r {
            Response::Partial { key, .. } => Some(key.as_str()),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), 256, "every configuration exactly once");

    let responses = client
        .request(&Request::new(
            "pc",
            RequestKind::PolicyCompare {
                bench: "adpcm_encode".into(),
                policies: vec![ControlPolicy::PaperArgmin, ControlPolicy::Static],
                window: 200,
            },
        ))
        .unwrap();
    assert_eq!(responses.len(), 3, "two partials + done");
    server.shutdown();
}

#[test]
fn repeat_requests_are_served_from_cache() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let req = phase_request("r1", "art", 600);
    let first = client.request(&req).unwrap();
    let again = client.request(&phase_request("r2", "art", 600)).unwrap();
    let (a, cached_a) = match &first[0] {
        Response::Partial {
            runtime_ns, cached, ..
        } => (*runtime_ns, *cached),
        other => panic!("{other:?}"),
    };
    let (b, cached_b) = match &again[0] {
        Response::Partial {
            runtime_ns, cached, ..
        } => (*runtime_ns, *cached),
        other => panic!("{other:?}"),
    };
    assert_eq!(a, b);
    assert!(!cached_a, "first request simulates");
    assert!(cached_b, "repeat is a cache hit");
    assert_eq!(server.simulated_count(), 1);
    server.shutdown();
}

#[test]
fn clean_shutdown_completes_in_flight_work() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // A whole program-adaptive sweep is in flight when shutdown begins.
    client
        .send(&Request::new(
            "inflight",
            RequestKind::Sweep {
                bench: "gzip".into(),
                mode: "prog".into(),
                window: 150,
            },
        ))
        .unwrap();
    // Wait for the queue to start streaming, then shut down mid-stream.
    let first = client.read_response().unwrap();
    assert!(matches!(first, Response::Partial { .. }));
    let shutdown_handle = std::thread::spawn(move || server.shutdown());
    let mut results = 1u64;
    loop {
        match client.read_response().unwrap() {
            Response::Partial { .. } => results += 1,
            Response::Done {
                results: n,
                expired,
                ..
            } => {
                assert_eq!((n, expired), (256, 0));
                break;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(results, 256, "every in-flight result was delivered");
    shutdown_handle.join().unwrap();
}

/// Regression for the shutdown/socket-close race: results that were
/// already computed when shutdown began — and every result of every
/// admitted request, from *multiple* connections — must be flushed to
/// their clients (through each request's `done` frame) before the
/// server closes the connections. A dropped socket would surface here
/// as an `UnexpectedEof` from `read_response`.
#[test]
fn shutdown_flushes_admitted_requests_before_closing_connections() {
    // One worker serializes the queue, so most of the admitted work is
    // still pending when shutdown begins.
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let mut slow = Client::connect(addr).unwrap();
    let mut quick = Client::connect(addr).unwrap();
    // Admit a long sweep on one connection and several singles on
    // another; begin shutdown as soon as the first partial proves the
    // queue is being worked.
    slow.send(&Request::new(
        "slow",
        RequestKind::Sweep {
            bench: "apsi".into(),
            mode: "prog".into(),
            window: 150,
        },
    ))
    .unwrap();
    for j in 0..3 {
        quick
            .send(&prog_request(&format!("q{j}"), "crafty", j * 11, 200))
            .unwrap();
    }
    let first = slow.read_response().unwrap();
    assert!(matches!(first, Response::Partial { .. }));
    let shutdown_handle = std::thread::spawn(move || server.shutdown());

    // Both connections must receive their complete streams.
    let mut slow_partials = 1u64;
    loop {
        match slow.read_response().expect("no EOF before done") {
            Response::Partial { .. } => slow_partials += 1,
            Response::Done { results, .. } => {
                assert_eq!(results, 256);
                break;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(slow_partials, 256);
    let mut quick_done = 0;
    while quick_done < 3 {
        match quick.read_response().expect("no EOF before all dones") {
            Response::Partial { .. } => {}
            Response::Done { results, .. } => {
                assert_eq!(results, 1);
                quick_done += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    shutdown_handle.join().unwrap();
}

/// High-priority jobs overtake queued low-priority jobs: with a single
/// worker and the queue pre-loaded, a later high-priority request
/// completes before earlier low-priority ones.
#[test]
fn high_priority_overtakes_queued_low_priority() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Pipeline: a burst of low-priority singles, then one high-priority
    // request, all before reading anything. Windows are sized so each
    // simulation takes far longer than admitting the whole pipeline —
    // the lone worker cannot outrun the reader thread.
    const LOWS: usize = 8;
    for j in 0..LOWS {
        let mut req = prog_request(&format!("low{j}"), "gzip", j * 29, 2_000);
        req.priority = Priority::Low;
        client.send(&req).unwrap();
    }
    let mut urgent = prog_request("urgent", "gzip", 255, 2_000);
    urgent.priority = Priority::High;
    client.send(&urgent).unwrap();

    // Collect done-frame order.
    let mut done_order = Vec::new();
    while done_order.len() < LOWS + 1 {
        let resp = client.read_response().unwrap();
        if matches!(resp, Response::Done { .. }) {
            done_order.push(resp.id().to_string());
        }
    }
    let urgent_pos = done_order.iter().position(|id| id == "urgent").unwrap();
    // The worker may already be a few jobs into the backlog when
    // "urgent" is admitted (loaded single-core runners deschedule the
    // reader), but a high-priority job must overtake the still-queued
    // half of the low backlog; FIFO would leave it last.
    assert!(
        urgent_pos <= LOWS / 2,
        "high priority should overtake the low backlog: {done_order:?}"
    );
    server.shutdown();
}
