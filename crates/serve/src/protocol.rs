//! The `gals-serve` wire protocol: line-delimited flat JSON over TCP.
//!
//! Every request and every response is one flat JSON object on one line
//! (the codec is [`gals_explore::json`], the same hand-rolled
//! no-dependency codec the result cache persists through). A request
//! carries a client-chosen `id`; every response line for that request
//! echoes it, so clients may pipeline requests and match streamed
//! results as they arrive.
//!
//! Requests:
//!
//! | `op`             | fields                                              |
//! |------------------|-----------------------------------------------------|
//! | `run_config`     | `bench`, `mode` (`sync`/`prog`/`phase`), `cfg` (enumeration index, fixed modes) or `policy` (phase mode), `window` |
//! | `sweep`          | `bench`, `mode` (`sync`/`prog`), `window` — every configuration of the space, streamed |
//! | `policy_compare` | `bench`, `policies` (comma-separated keys), `window` |
//! | `status`         | —                                                   |
//!
//! Responses: per-configuration `result` lines
//! (`key`/`runtime_ns`/`cached`) stream back as simulations complete,
//! then one `done` line carrying the result count; errors are a single
//! line with an `error` field. `status` answers with counters and
//! `done`.

use gals_core::ControlPolicy;
use gals_explore::json::{parse_flat_object, JsonValue, ObjectWriter};

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Measure one benchmark under one machine configuration.
    RunConfig {
        /// Benchmark name (see `gals_workloads::suite`).
        bench: String,
        /// Machine style: `"sync"`, `"prog"`, or `"phase"`.
        mode: String,
        /// Configuration index into the mode's enumeration (`sync`,
        /// `prog`).
        cfg: Option<usize>,
        /// Control-policy key (`phase` mode; default `argmin`).
        policy: Option<ControlPolicy>,
        /// Instruction window (0 = server default).
        window: u64,
    },
    /// Measure one benchmark under every configuration of a space.
    Sweep {
        /// Benchmark name.
        bench: String,
        /// `"sync"` (1,024 configurations) or `"prog"` (256).
        mode: String,
        /// Instruction window (0 = server default).
        window: u64,
    },
    /// Measure one benchmark under each listed control policy.
    PolicyCompare {
        /// Benchmark name.
        bench: String,
        /// Policies to compare.
        policies: Vec<ControlPolicy>,
        /// Instruction window (0 = server default).
        window: u64,
    },
    /// Server counters.
    Status,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on every response line.
    pub id: String,
    /// The requested operation.
    pub kind: RequestKind,
}

impl Request {
    /// Parses one request line. The error string is safe to echo to the
    /// client.
    pub fn parse(line: &str) -> Result<Request, String> {
        let fields =
            parse_flat_object(line.trim()).ok_or_else(|| "malformed request json".to_string())?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let get_str = |key: &str| get(key).and_then(JsonValue::as_str).map(str::to_string);
        let id = get_str("id").unwrap_or_default();
        let op = get_str("op").ok_or_else(|| "missing op".to_string())?;
        let window = match get("window") {
            None => 0,
            Some(v) => {
                let n = v
                    .as_num()
                    .ok_or_else(|| "window must be a number".to_string())?;
                if !(n.is_finite() && n >= 0.0) {
                    return Err("window must be a non-negative number".to_string());
                }
                n as u64
            }
        };
        let bench = |err: &str| get_str("bench").ok_or_else(|| err.to_string());
        let kind = match op.as_str() {
            "run_config" => {
                let mode = get_str("mode").ok_or_else(|| "missing mode".to_string())?;
                if !matches!(mode.as_str(), "sync" | "prog" | "phase") {
                    return Err(format!("unknown mode {mode:?}"));
                }
                let cfg = match get("cfg") {
                    None => None,
                    Some(v) => Some(
                        v.as_num()
                            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                            .ok_or_else(|| "cfg must be a non-negative integer".to_string())?
                            as usize,
                    ),
                };
                let policy = match get_str("policy") {
                    None => None,
                    Some(p) => Some(p.parse::<ControlPolicy>().map_err(|e| e.to_string())?),
                };
                if mode != "phase" && cfg.is_none() {
                    return Err(format!("mode {mode:?} requires cfg"));
                }
                RequestKind::RunConfig {
                    bench: bench("missing bench")?,
                    mode,
                    cfg,
                    policy,
                    window,
                }
            }
            "sweep" => {
                let mode = get_str("mode").ok_or_else(|| "missing mode".to_string())?;
                if !matches!(mode.as_str(), "sync" | "prog") {
                    return Err(format!("sweep mode must be sync or prog, got {mode:?}"));
                }
                RequestKind::Sweep {
                    bench: bench("missing bench")?,
                    mode,
                    window,
                }
            }
            "policy_compare" => {
                let raw = get_str("policies").unwrap_or_else(|| "argmin,static".to_string());
                let policies = raw
                    .split(',')
                    .map(|p| p.trim().parse::<ControlPolicy>().map_err(|e| e.to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
                if policies.is_empty() {
                    return Err("empty policy list".to_string());
                }
                RequestKind::PolicyCompare {
                    bench: bench("missing bench")?,
                    policies,
                    window,
                }
            }
            "status" => RequestKind::Status,
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok(Request { id, kind })
    }

    /// Encodes the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_str("id", &self.id);
        match &self.kind {
            RequestKind::RunConfig {
                bench,
                mode,
                cfg,
                policy,
                window,
            } => {
                w.field_str("op", "run_config")
                    .field_str("bench", bench)
                    .field_str("mode", mode);
                if let Some(cfg) = cfg {
                    w.field_num("cfg", *cfg as f64);
                }
                if let Some(policy) = policy {
                    w.field_str("policy", &policy.key());
                }
                w.field_num("window", *window as f64);
            }
            RequestKind::Sweep {
                bench,
                mode,
                window,
            } => {
                w.field_str("op", "sweep")
                    .field_str("bench", bench)
                    .field_str("mode", mode)
                    .field_num("window", *window as f64);
            }
            RequestKind::PolicyCompare {
                bench,
                policies,
                window,
            } => {
                let keys: Vec<String> = policies.iter().map(ControlPolicy::key).collect();
                w.field_str("op", "policy_compare")
                    .field_str("bench", bench)
                    .field_str("policies", &keys.join(","))
                    .field_num("window", *window as f64);
            }
            RequestKind::Status => {
                w.field_str("op", "status");
            }
        }
        w.finish()
    }
}

/// One parsed response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One configuration's measurement.
    Result {
        /// Echoed request id.
        id: String,
        /// Configuration key within the request.
        key: String,
        /// Measured (deterministic) runtime in nanoseconds.
        runtime_ns: f64,
        /// Served from the result cache without re-simulating.
        cached: bool,
    },
    /// Terminal line of a successful request.
    Done {
        /// Echoed request id.
        id: String,
        /// Result lines that preceded this one.
        results: u64,
    },
    /// Terminal line of a failed request.
    Error {
        /// Echoed request id (empty when the line wasn't parseable).
        id: String,
        /// What went wrong.
        message: String,
    },
    /// Status counters (`status` requests; terminal).
    Status {
        /// Echoed request id.
        id: String,
        /// Counter name/value pairs.
        counters: Vec<(String, f64)>,
    },
}

impl Response {
    /// The echoed request id of any response flavor.
    pub fn id(&self) -> &str {
        match self {
            Response::Result { id, .. }
            | Response::Done { id, .. }
            | Response::Error { id, .. }
            | Response::Status { id, .. } => id,
        }
    }

    /// True for the line that terminates a request's response stream.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Response::Result { .. })
    }

    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let fields =
            parse_flat_object(line.trim()).ok_or_else(|| "malformed response json".to_string())?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let id = get("id")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string();
        if let Some(msg) = get("error").and_then(JsonValue::as_str) {
            return Ok(Response::Error {
                id,
                message: msg.to_string(),
            });
        }
        if let Some(key) = get("key").and_then(JsonValue::as_str) {
            return Ok(Response::Result {
                id,
                key: key.to_string(),
                runtime_ns: get("runtime_ns")
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| "result line missing runtime_ns".to_string())?,
                cached: matches!(get("cached"), Some(JsonValue::Bool(true))),
            });
        }
        if get("status").is_some() {
            let counters = fields
                .iter()
                .filter_map(|(k, v)| match v {
                    JsonValue::Num(n) if k != "status" => Some((k.clone(), *n)),
                    _ => None,
                })
                .collect();
            return Ok(Response::Status { id, counters });
        }
        if matches!(get("done"), Some(JsonValue::Bool(true))) {
            return Ok(Response::Done {
                id,
                results: get("results").and_then(JsonValue::as_num).unwrap_or(0.0) as u64,
            });
        }
        Err("unrecognized response line".to_string())
    }

    /// Encodes the response as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut w = ObjectWriter::new();
        match self {
            Response::Result {
                id,
                key,
                runtime_ns,
                cached,
            } => {
                w.field_str("id", id)
                    .field_str("key", key)
                    .field_num("runtime_ns", *runtime_ns)
                    .field_bool("cached", *cached);
            }
            Response::Done { id, results } => {
                w.field_str("id", id)
                    .field_bool("done", true)
                    .field_num("results", *results as f64);
            }
            Response::Error { id, message } => {
                w.field_str("id", id).field_str("error", message);
            }
            Response::Status { id, counters } => {
                w.field_str("id", id).field_num("status", 1.0);
                for (k, v) in counters {
                    w.field_num(k, *v);
                }
                w.field_bool("done", true);
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request {
                id: "a1".into(),
                kind: RequestKind::RunConfig {
                    bench: "gzip".into(),
                    mode: "phase".into(),
                    cfg: None,
                    policy: Some(ControlPolicy::PaperArgmin),
                    window: 2_000,
                },
            },
            Request {
                id: "a2".into(),
                kind: RequestKind::RunConfig {
                    bench: "art".into(),
                    mode: "sync".into(),
                    cfg: Some(17),
                    policy: None,
                    window: 0,
                },
            },
            Request {
                id: "a3".into(),
                kind: RequestKind::Sweep {
                    bench: "em3d".into(),
                    mode: "prog".into(),
                    window: 1_000,
                },
            },
            Request {
                id: "a4".into(),
                kind: RequestKind::PolicyCompare {
                    bench: "apsi".into(),
                    policies: vec![ControlPolicy::PaperArgmin, ControlPolicy::Static],
                    window: 500,
                },
            },
            Request {
                id: "a5".into(),
                kind: RequestKind::Status,
            },
        ];
        for req in reqs {
            let line = req.to_line();
            assert_eq!(Request::parse(&line).expect(&line), req, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for bad in [
            "",
            "{",
            "not json",
            r#"{"id":"x"}"#,
            r#"{"op":"run_config","id":"x"}"#,
            r#"{"op":"run_config","id":"x","bench":"gzip","mode":"warp"}"#,
            r#"{"op":"run_config","id":"x","bench":"gzip","mode":"sync"}"#,
            r#"{"op":"run_config","id":"x","bench":"gzip","mode":"sync","cfg":-1}"#,
            r#"{"op":"run_config","id":"x","bench":"gzip","mode":"phase","policy":"nope"}"#,
            r#"{"op":"sweep","id":"x","bench":"gzip","mode":"phase"}"#,
            r#"{"op":"policy_compare","id":"x","bench":"gzip","policies":""}"#,
            r#"{"op":"teleport","id":"x"}"#,
            r#"{"op":"run_config","id":"x","bench":"gzip","mode":"sync","cfg":1,"window":"soon"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Result {
                id: "r".into(),
                key: "cfg17".into(),
                runtime_ns: 12345.678,
                cached: true,
            },
            Response::Done {
                id: "r".into(),
                results: 256,
            },
            Response::Error {
                id: String::new(),
                message: "malformed request json".into(),
            },
            Response::Status {
                id: "s".into(),
                counters: vec![("requests".into(), 4.0), ("cache_len".into(), 99.0)],
            },
        ];
        for resp in resps {
            let line = resp.to_line();
            assert_eq!(Response::parse(&line).expect(&line), resp, "{line}");
        }
    }

    #[test]
    fn terminal_flags() {
        assert!(!Response::Result {
            id: String::new(),
            key: String::new(),
            runtime_ns: 1.0,
            cached: false
        }
        .is_terminal());
        assert!(Response::Done {
            id: String::new(),
            results: 0
        }
        .is_terminal());
    }
}
