//! The `gals-serve` wire protocol: line-delimited flat JSON over TCP.
//!
//! Every request and every response is one flat JSON object on one line
//! (the codec is [`gals_explore::json`], the same hand-rolled
//! no-dependency codec the result cache persists through). A request
//! carries a client-chosen `id` — the request tag — plus optional
//! scheduling attributes; every response line for that request echoes
//! the tag, so clients may pipeline requests and match streamed frames
//! as they arrive.
//!
//! Requests:
//!
//! | `op`             | fields                                              |
//! |------------------|-----------------------------------------------------|
//! | `run_config`     | `bench`, `mode` (`sync`/`prog`/`phase`), `cfg` (enumeration index, fixed modes) or `policy` (phase mode), `window` |
//! | `sweep`          | `bench`, `mode` (`sync`/`prog`), `window` — every configuration of the space, streamed |
//! | `policy_compare` | `bench`, `policies` (comma-separated keys), `window` |
//! | `status`         | —                                                   |
//!
//! Scheduling attributes (any request): `priority` (`low` / `normal` /
//! `high`, default `normal`) orders the server's shared job queue;
//! `deadline_ms` bounds how long each of the request's jobs may wait —
//! a job the workers don't reach in time resolves as an `expired` frame
//! instead of simulating. A cached result is served even past the
//! deadline (it costs nothing), so `deadline_ms: 0` doubles as a
//! cache-only probe.
//!
//! Responses: per-job `partial` frames (`key`/`runtime_ns`/`cached`)
//! stream back as each job resolves, `expired` frames
//! (`key`/`expired`) mark jobs that missed their deadline, then one
//! `done` frame carries the `results`/`expired` counts; errors are a
//! single line with an `error` field. `status` answers with counters
//! and `done`.

use std::borrow::Cow;
use std::io::BufRead;
use std::str::FromStr;

use gals_core::ControlPolicy;
use gals_explore::json::{parse_flat_object, JsonValue, ObjectWriter};
use gals_explore::Priority;

/// Upper bound on one wire line, enforced on both ends: the server
/// rejects longer request lines with an error frame (and a client
/// refuses longer response lines) instead of buffering them
/// unboundedly. Generously above the largest legitimate frame — a
/// `partial` line is ~100 bytes and request lines are smaller still.
pub const MAX_LINE_LEN: usize = 64 * 1024;

/// Outcome of one [`BoundedLineReader::read_line`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineRead {
    /// A complete line is available via [`BoundedLineReader::line`].
    Line,
    /// A line exceeded [`MAX_LINE_LEN`] and was discarded whole (its
    /// bytes were dropped through the terminating newline).
    TooLong,
    /// The stream ended. Bytes of an unterminated final line, if any,
    /// remain readable via [`BoundedLineReader::partial`].
    Eof,
}

/// A reusable, length-bounded line reader for the wire protocol.
///
/// Replaces per-line `String::new()` + `read_line` on both wire ends:
/// the internal buffer is reused across lines (steady-state reads
/// allocate nothing once it has grown to the working line length), and
/// a line longer than [`MAX_LINE_LEN`] is discarded — never buffered —
/// so a malformed or malicious peer cannot grow memory unboundedly.
///
/// Safe on nonblocking or read-timeout streams: a `WouldBlock` /
/// `TimedOut` error from the underlying reader surfaces as `Err` with
/// all accumulation state intact, and the next call resumes mid-line.
#[derive(Debug, Default)]
pub struct BoundedLineReader {
    buf: Vec<u8>,
    /// Inside an over-long line, dropping bytes until its newline.
    discarding: bool,
    /// `buf` holds a line already delivered to the caller; clear it on
    /// the next call rather than at return so `line()` can borrow.
    delivered: bool,
}

impl BoundedLineReader {
    /// An empty reader.
    pub fn new() -> BoundedLineReader {
        BoundedLineReader::default()
    }

    /// Reads the next line (without its newline) into the internal
    /// buffer.
    ///
    /// # Errors
    ///
    /// Propagates reader errors, including `WouldBlock`/`TimedOut` on
    /// nonblocking streams (accumulation state survives; call again).
    pub fn read_line(&mut self, r: &mut impl BufRead) -> std::io::Result<LineRead> {
        if self.delivered {
            self.buf.clear();
            self.delivered = false;
        }
        loop {
            let mut outcome = None;
            let consumed;
            {
                let avail = r.fill_buf()?;
                if avail.is_empty() {
                    return Ok(LineRead::Eof);
                }
                match avail.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        consumed = pos + 1;
                        if self.discarding {
                            self.discarding = false;
                            outcome = Some(LineRead::TooLong);
                        } else if self.buf.len() + pos > MAX_LINE_LEN {
                            self.buf.clear();
                            outcome = Some(LineRead::TooLong);
                        } else {
                            self.buf.extend_from_slice(&avail[..pos]);
                            self.delivered = true;
                            outcome = Some(LineRead::Line);
                        }
                    }
                    None => {
                        consumed = avail.len();
                        if !self.discarding {
                            if self.buf.len() + avail.len() > MAX_LINE_LEN {
                                self.buf.clear();
                                self.discarding = true;
                            } else {
                                self.buf.extend_from_slice(avail);
                            }
                        }
                    }
                }
            }
            r.consume(consumed);
            if let Some(outcome) = outcome {
                return Ok(outcome);
            }
        }
    }

    /// The line delivered by the last [`LineRead::Line`] return
    /// (invalid UTF-8 is replaced, so a binary-garbage line fails
    /// request parsing rather than killing the connection).
    pub fn line(&self) -> Cow<'_, str> {
        String::from_utf8_lossy(&self.buf)
    }

    /// Bytes of an unterminated final line after [`LineRead::Eof`]
    /// (empty when the stream ended cleanly on a line boundary).
    pub fn partial(&self) -> &[u8] {
        if self.delivered {
            &[]
        } else {
            &self.buf
        }
    }
}

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Measure one benchmark under one machine configuration.
    RunConfig {
        /// Benchmark name (see `gals_workloads::suite`).
        bench: String,
        /// Machine style: `"sync"`, `"prog"`, or `"phase"`.
        mode: String,
        /// Configuration index into the mode's enumeration (`sync`,
        /// `prog`).
        cfg: Option<usize>,
        /// Control-policy key (`phase` mode; default `argmin`).
        policy: Option<ControlPolicy>,
        /// Instruction window (0 = server default).
        window: u64,
    },
    /// Measure one benchmark under every configuration of a space.
    Sweep {
        /// Benchmark name.
        bench: String,
        /// `"sync"` (1,024 configurations) or `"prog"` (256).
        mode: String,
        /// Instruction window (0 = server default).
        window: u64,
    },
    /// Measure one benchmark under each listed control policy.
    PolicyCompare {
        /// Benchmark name.
        bench: String,
        /// Policies to compare.
        policies: Vec<ControlPolicy>,
        /// Instruction window (0 = server default).
        window: u64,
    },
    /// Server counters.
    Status,
}

/// One parsed request line: a tag, scheduling attributes, and the
/// operation. Every job the request expands into inherits the
/// priority, the deadline, and the tag.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation tag, echoed on every response frame.
    pub id: String,
    /// Scheduling class for this request's jobs.
    pub priority: Priority,
    /// Per-job wait bound in milliseconds from admission; `None` = run
    /// whenever reached.
    pub deadline_ms: Option<u64>,
    /// The requested operation.
    pub kind: RequestKind,
}

impl Request {
    /// A normal-priority, deadline-free request (the common case; set
    /// the scheduling fields directly for anything else).
    pub fn new(id: impl Into<String>, kind: RequestKind) -> Request {
        Request {
            id: id.into(),
            priority: Priority::Normal,
            deadline_ms: None,
            kind,
        }
    }

    /// Parses one request line. The error string is safe to echo to the
    /// client.
    pub fn parse(line: &str) -> Result<Request, String> {
        let fields =
            parse_flat_object(line.trim()).ok_or_else(|| "malformed request json".to_string())?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let get_str = |key: &str| get(key).and_then(JsonValue::as_str).map(str::to_string);
        let get_u64 = |key: &str| -> Result<Option<u64>, String> {
            match get(key) {
                None => Ok(None),
                Some(v) => {
                    let n = v
                        .as_num()
                        .filter(|n| n.is_finite() && *n >= 0.0)
                        .ok_or_else(|| format!("{key} must be a non-negative number"))?;
                    Ok(Some(n as u64))
                }
            }
        };
        let id = get_str("id").unwrap_or_default();
        let op = get_str("op").ok_or_else(|| "missing op".to_string())?;
        let priority = match get("priority") {
            None => Priority::Normal,
            Some(v) => {
                let p = v
                    .as_str()
                    .ok_or_else(|| "priority must be a string (low|normal|high)".to_string())?;
                Priority::from_str(p)?
            }
        };
        let deadline_ms = get_u64("deadline_ms")?;
        let window = get_u64("window")?.unwrap_or(0);
        let bench = |err: &str| get_str("bench").ok_or_else(|| err.to_string());
        let kind = match op.as_str() {
            "run_config" => {
                let mode = get_str("mode").ok_or_else(|| "missing mode".to_string())?;
                if !matches!(mode.as_str(), "sync" | "prog" | "phase") {
                    return Err(format!("unknown mode {mode:?}"));
                }
                let cfg = match get("cfg") {
                    None => None,
                    Some(v) => Some(
                        v.as_num()
                            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                            .ok_or_else(|| "cfg must be a non-negative integer".to_string())?
                            as usize,
                    ),
                };
                let policy = match get_str("policy") {
                    None => None,
                    Some(p) => Some(p.parse::<ControlPolicy>().map_err(|e| e.to_string())?),
                };
                if mode != "phase" && cfg.is_none() {
                    return Err(format!("mode {mode:?} requires cfg"));
                }
                RequestKind::RunConfig {
                    bench: bench("missing bench")?,
                    mode,
                    cfg,
                    policy,
                    window,
                }
            }
            "sweep" => {
                let mode = get_str("mode").ok_or_else(|| "missing mode".to_string())?;
                if !matches!(mode.as_str(), "sync" | "prog") {
                    return Err(format!("sweep mode must be sync or prog, got {mode:?}"));
                }
                RequestKind::Sweep {
                    bench: bench("missing bench")?,
                    mode,
                    window,
                }
            }
            "policy_compare" => {
                let raw = get_str("policies").unwrap_or_else(|| "argmin,static".to_string());
                let policies = raw
                    .split(',')
                    .map(|p| p.trim().parse::<ControlPolicy>().map_err(|e| e.to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
                if policies.is_empty() {
                    return Err("empty policy list".to_string());
                }
                RequestKind::PolicyCompare {
                    bench: bench("missing bench")?,
                    policies,
                    window,
                }
            }
            "status" => RequestKind::Status,
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok(Request {
            id,
            priority,
            deadline_ms,
            kind,
        })
    }

    /// Encodes the request as one wire line (no trailing newline).
    /// Default scheduling attributes are omitted, so pre-scheduler
    /// clients' lines are unchanged.
    pub fn to_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.field_str("id", &self.id);
        if self.priority != Priority::Normal {
            w.field_str("priority", self.priority.key());
        }
        if let Some(ms) = self.deadline_ms {
            w.field_num("deadline_ms", ms as f64);
        }
        match &self.kind {
            RequestKind::RunConfig {
                bench,
                mode,
                cfg,
                policy,
                window,
            } => {
                w.field_str("op", "run_config")
                    .field_str("bench", bench)
                    .field_str("mode", mode);
                if let Some(cfg) = cfg {
                    w.field_num("cfg", *cfg as f64);
                }
                if let Some(policy) = policy {
                    w.field_str("policy", &policy.key());
                }
                w.field_num("window", *window as f64);
            }
            RequestKind::Sweep {
                bench,
                mode,
                window,
            } => {
                w.field_str("op", "sweep")
                    .field_str("bench", bench)
                    .field_str("mode", mode)
                    .field_num("window", *window as f64);
            }
            RequestKind::PolicyCompare {
                bench,
                policies,
                window,
            } => {
                let keys: Vec<String> = policies.iter().map(ControlPolicy::key).collect();
                w.field_str("op", "policy_compare")
                    .field_str("bench", bench)
                    .field_str("policies", &keys.join(","))
                    .field_num("window", *window as f64);
            }
            RequestKind::Status => {
                w.field_str("op", "status");
            }
        }
        w.finish()
    }
}

/// One parsed response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One job's measurement, streamed as soon as it resolves.
    Partial {
        /// Echoed request tag.
        id: String,
        /// Configuration key within the request.
        key: String,
        /// Measured (deterministic) runtime in nanoseconds (0 marks a
        /// panicked simulation, by the explorer's validity convention).
        runtime_ns: f64,
        /// Served from the result cache without re-simulating.
        cached: bool,
    },
    /// One job that missed its deadline before a worker reached it.
    Expired {
        /// Echoed request tag.
        id: String,
        /// Configuration key within the request.
        key: String,
    },
    /// Terminal frame of a successful request.
    Done {
        /// Echoed request tag.
        id: String,
        /// `partial` frames that preceded this one.
        results: u64,
        /// `expired` frames that preceded this one.
        expired: u64,
    },
    /// Terminal frame of a failed request.
    Error {
        /// Echoed request tag (empty when the line wasn't parseable).
        id: String,
        /// What went wrong.
        message: String,
    },
    /// Status counters (`status` requests; terminal).
    Status {
        /// Echoed request tag.
        id: String,
        /// Counter name/value pairs.
        counters: Vec<(String, f64)>,
    },
}

impl Response {
    /// The echoed request tag of any response flavor.
    pub fn id(&self) -> &str {
        match self {
            Response::Partial { id, .. }
            | Response::Expired { id, .. }
            | Response::Done { id, .. }
            | Response::Error { id, .. }
            | Response::Status { id, .. } => id,
        }
    }

    /// True for the frame that terminates a request's response stream.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Response::Partial { .. } | Response::Expired { .. })
    }

    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let fields =
            parse_flat_object(line.trim()).ok_or_else(|| "malformed response json".to_string())?;
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let id = get("id")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string();
        if let Some(msg) = get("error").and_then(JsonValue::as_str) {
            return Ok(Response::Error {
                id,
                message: msg.to_string(),
            });
        }
        if let Some(key) = get("key").and_then(JsonValue::as_str) {
            if matches!(get("expired"), Some(JsonValue::Bool(true))) {
                return Ok(Response::Expired {
                    id,
                    key: key.to_string(),
                });
            }
            return Ok(Response::Partial {
                id,
                key: key.to_string(),
                runtime_ns: get("runtime_ns")
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| "partial frame missing runtime_ns".to_string())?,
                cached: matches!(get("cached"), Some(JsonValue::Bool(true))),
            });
        }
        if get("status").is_some() {
            let counters = fields
                .iter()
                .filter_map(|(k, v)| match v {
                    JsonValue::Num(n) if k != "status" => Some((k.clone(), *n)),
                    _ => None,
                })
                .collect();
            return Ok(Response::Status { id, counters });
        }
        if matches!(get("done"), Some(JsonValue::Bool(true))) {
            let num = |key: &str| get(key).and_then(JsonValue::as_num).unwrap_or(0.0) as u64;
            return Ok(Response::Done {
                id,
                results: num("results"),
                expired: num("expired"),
            });
        }
        Err("unrecognized response line".to_string())
    }

    /// Encodes the response as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut w = ObjectWriter::new();
        match self {
            Response::Partial {
                id,
                key,
                runtime_ns,
                cached,
            } => {
                w.field_str("id", id)
                    .field_str("key", key)
                    .field_num("runtime_ns", *runtime_ns)
                    .field_bool("cached", *cached);
            }
            Response::Expired { id, key } => {
                w.field_str("id", id)
                    .field_str("key", key)
                    .field_bool("expired", true);
            }
            Response::Done {
                id,
                results,
                expired,
            } => {
                w.field_str("id", id)
                    .field_bool("done", true)
                    .field_num("results", *results as f64)
                    .field_num("expired", *expired as f64);
            }
            Response::Error { id, message } => {
                w.field_str("id", id).field_str("error", message);
            }
            Response::Status { id, counters } => {
                w.field_str("id", id).field_num("status", 1.0);
                for (k, v) in counters {
                    w.field_num(k, *v);
                }
                w.field_bool("done", true);
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request {
                id: "a1".into(),
                priority: Priority::High,
                deadline_ms: Some(250),
                kind: RequestKind::RunConfig {
                    bench: "gzip".into(),
                    mode: "phase".into(),
                    cfg: None,
                    policy: Some(ControlPolicy::PaperArgmin),
                    window: 2_000,
                },
            },
            Request::new(
                "a2",
                RequestKind::RunConfig {
                    bench: "art".into(),
                    mode: "sync".into(),
                    cfg: Some(17),
                    policy: None,
                    window: 0,
                },
            ),
            Request {
                id: "a3".into(),
                priority: Priority::Low,
                deadline_ms: None,
                kind: RequestKind::Sweep {
                    bench: "em3d".into(),
                    mode: "prog".into(),
                    window: 1_000,
                },
            },
            Request {
                id: "a4".into(),
                priority: Priority::Normal,
                deadline_ms: Some(0),
                kind: RequestKind::PolicyCompare {
                    bench: "apsi".into(),
                    policies: vec![ControlPolicy::PaperArgmin, ControlPolicy::Static],
                    window: 500,
                },
            },
            Request::new("a5", RequestKind::Status),
        ];
        for req in reqs {
            let line = req.to_line();
            assert_eq!(Request::parse(&line).expect(&line), req, "{line}");
        }
    }

    #[test]
    fn pre_scheduler_request_lines_still_parse() {
        // A client that predates priorities/deadlines sends neither
        // field; the parse defaults must match Request::new.
        let req = Request::parse(
            r#"{"id":"old","op":"run_config","bench":"gzip","mode":"sync","cfg":3,"window":100}"#,
        )
        .unwrap();
        assert_eq!(req.priority, Priority::Normal);
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for bad in [
            "",
            "{",
            "not json",
            r#"{"id":"x"}"#,
            r#"{"op":"run_config","id":"x"}"#,
            r#"{"op":"run_config","id":"x","bench":"gzip","mode":"warp"}"#,
            r#"{"op":"run_config","id":"x","bench":"gzip","mode":"sync"}"#,
            r#"{"op":"run_config","id":"x","bench":"gzip","mode":"sync","cfg":-1}"#,
            r#"{"op":"run_config","id":"x","bench":"gzip","mode":"phase","policy":"nope"}"#,
            r#"{"op":"sweep","id":"x","bench":"gzip","mode":"phase"}"#,
            r#"{"op":"policy_compare","id":"x","bench":"gzip","policies":""}"#,
            r#"{"op":"teleport","id":"x"}"#,
            r#"{"op":"run_config","id":"x","bench":"gzip","mode":"sync","cfg":1,"window":"soon"}"#,
            r#"{"op":"status","id":"x","priority":"urgent"}"#,
            r#"{"op":"status","id":"x","priority":2}"#,
            r#"{"op":"status","id":"x","deadline_ms":-5}"#,
            r#"{"op":"status","id":"x","deadline_ms":"never"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Partial {
                id: "r".into(),
                key: "cfg17".into(),
                runtime_ns: 12345.678,
                cached: true,
            },
            Response::Expired {
                id: "r".into(),
                key: "cfg18".into(),
            },
            Response::Done {
                id: "r".into(),
                results: 255,
                expired: 1,
            },
            Response::Error {
                id: String::new(),
                message: "malformed request json".into(),
            },
            Response::Status {
                id: "s".into(),
                counters: vec![("requests".into(), 4.0), ("cache_len".into(), 99.0)],
            },
        ];
        for resp in resps {
            let line = resp.to_line();
            assert_eq!(Response::parse(&line).expect(&line), resp, "{line}");
        }
    }

    #[test]
    fn bounded_reader_reuses_buffer_and_splits_lines() {
        let data = b"first\nsecond line\n\nlast-no-newline";
        let mut r = std::io::BufReader::new(&data[..]);
        let mut lines = BoundedLineReader::new();
        assert_eq!(lines.read_line(&mut r).unwrap(), LineRead::Line);
        assert_eq!(lines.line(), "first");
        assert_eq!(lines.read_line(&mut r).unwrap(), LineRead::Line);
        assert_eq!(lines.line(), "second line");
        assert_eq!(lines.read_line(&mut r).unwrap(), LineRead::Line);
        assert_eq!(lines.line(), "");
        assert_eq!(lines.read_line(&mut r).unwrap(), LineRead::Eof);
        assert_eq!(lines.partial(), b"last-no-newline");
    }

    #[test]
    fn bounded_reader_discards_oversize_lines_whole() {
        let mut data = vec![b'x'; MAX_LINE_LEN + 10];
        data.push(b'\n');
        data.extend_from_slice(b"after\n");
        // A tiny BufRead buffer forces the no-newline-in-view path.
        let mut r = std::io::BufReader::with_capacity(64, &data[..]);
        let mut lines = BoundedLineReader::new();
        assert_eq!(lines.read_line(&mut r).unwrap(), LineRead::TooLong);
        assert_eq!(lines.read_line(&mut r).unwrap(), LineRead::Line);
        assert_eq!(lines.line(), "after");
        assert_eq!(lines.read_line(&mut r).unwrap(), LineRead::Eof);
        assert!(lines.partial().is_empty());
    }

    #[test]
    fn bounded_reader_accepts_lines_at_the_limit() {
        let mut data = vec![b'y'; MAX_LINE_LEN];
        data.push(b'\n');
        let mut r = std::io::BufReader::new(&data[..]);
        let mut lines = BoundedLineReader::new();
        assert_eq!(lines.read_line(&mut r).unwrap(), LineRead::Line);
        assert_eq!(lines.line().len(), MAX_LINE_LEN);
    }

    #[test]
    fn terminal_flags() {
        assert!(!Response::Partial {
            id: String::new(),
            key: String::new(),
            runtime_ns: 1.0,
            cached: false
        }
        .is_terminal());
        assert!(!Response::Expired {
            id: String::new(),
            key: String::new(),
        }
        .is_terminal());
        assert!(Response::Done {
            id: String::new(),
            results: 0,
            expired: 0,
        }
        .is_terminal());
    }
}

#[cfg(test)]
mod prop_tests {
    //! Property round-trips over the extended frame set: arbitrary
    //! tags, scheduling attributes, runtimes, and counts must encode to
    //! one line and parse back identically.

    use super::*;
    use proptest::prelude::*;

    /// Tags exercising the codec's string escaping.
    fn tag_pool() -> Vec<String> {
        vec![
            String::new(),
            "r1".into(),
            "client-7/req 42".into(),
            "with\"quote".into(),
            "tab\there".into(),
            "päth✓".into(),
        ]
    }

    fn bench_pool() -> Vec<String> {
        vec!["gzip".into(), "art".into(), "adpcm_encode".into()]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn run_config_requests_round_trip(
            id in prop::sample::select(tag_pool()),
            prio in prop::sample::select(vec![Priority::Low, Priority::Normal, Priority::High]),
            has_deadline in any::<bool>(),
            deadline in 0u64..500_000,
            bench in prop::sample::select(bench_pool()),
            cfg in 0usize..1024,
            window in 0u64..1_000_000,
        ) {
            let req = Request {
                id,
                priority: prio,
                deadline_ms: has_deadline.then_some(deadline),
                kind: RequestKind::RunConfig {
                    bench,
                    mode: "sync".into(),
                    cfg: Some(cfg),
                    policy: None,
                    window,
                },
            };
            let line = req.to_line();
            prop_assert_eq!(Request::parse(&line).expect(&line), req);
        }

        #[test]
        fn policy_compare_requests_round_trip(
            id in prop::sample::select(tag_pool()),
            prio in prop::sample::select(vec![Priority::Low, Priority::Normal, Priority::High]),
            deadline in 0u64..100_000,
            n_policies in 1usize..4,
            window in 0u64..1_000_000,
        ) {
            let req = Request {
                id,
                priority: prio,
                deadline_ms: Some(deadline),
                kind: RequestKind::PolicyCompare {
                    bench: "apsi".into(),
                    policies: ControlPolicy::BUILTIN[..n_policies].to_vec(),
                    window,
                },
            };
            let line = req.to_line();
            prop_assert_eq!(Request::parse(&line).expect(&line), req);
        }

        #[test]
        fn partial_frames_round_trip(
            id in prop::sample::select(tag_pool()),
            key in prop::sample::select(tag_pool()),
            runtime_mantissa in 0u64..1_000_000_000,
            cached in any::<bool>(),
        ) {
            let resp = Response::Partial {
                id,
                key,
                // Exercise fractional runtimes; the codec must carry
                // them bit-exactly through the f64 formatter.
                runtime_ns: runtime_mantissa as f64 / 128.0,
                cached,
            };
            let line = resp.to_line();
            prop_assert_eq!(Response::parse(&line).expect(&line), resp);
        }

        #[test]
        fn expired_and_done_frames_round_trip(
            id in prop::sample::select(tag_pool()),
            key in prop::sample::select(tag_pool()),
            results in 0u64..1_000_000,
            expired in 0u64..1_000_000,
        ) {
            let exp = Response::Expired { id: id.clone(), key };
            let line = exp.to_line();
            prop_assert_eq!(Response::parse(&line).expect(&line), exp);

            let done = Response::Done { id, results, expired };
            let line = done.to_line();
            prop_assert_eq!(Response::parse(&line).expect(&line), done);
        }
    }
}
