//! Raw Linux `epoll`/`eventfd` bindings for the serve reactor.
//!
//! The build environment has no registry access, so instead of `libc`
//! or `mio` this module declares the four syscall wrappers the reactor
//! needs directly against the C ABI and wraps them in two small safe
//! types: [`Epoll`] (the readiness queue) and [`WakeFd`] (a
//! cross-thread wakeup eventfd). Everything `unsafe` lives here, each
//! call site individually justified (gals-lint's `unsafe-audit` rule
//! enforces the `// SAFETY:` comments); the reactor itself is safe
//! code over these wrappers.
//!
//! Constants are transcribed from the Linux UAPI headers
//! (`linux/eventpoll.h`, `linux/eventfd.h`); they are ABI-stable by
//! kernel policy.

use std::ffi::{c_int, c_void};
use std::io;
use std::os::fd::RawFd;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`; always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup — both stream halves closed (`EPOLLHUP`; always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery (`EPOLLET`).
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One readiness record, layout-compatible with the kernel's
/// `struct epoll_event`. On x86 the kernel declares the struct packed
/// (a 12-byte layout other architectures don't use), so the Rust
/// mirror must match per-arch or `epoll_wait` would scribble across
/// field boundaries.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLL*` bits).
    pub events: u32,
    /// The caller's token, returned verbatim (we store a connection
    /// token here, never a pointer).
    pub data: u64,
}

impl EpollEvent {
    /// An empty record for pre-sizing `epoll_wait` buffers.
    pub const fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

// SAFETY: signatures transcribed from the Linux man pages (epoll_*(2),
// eventfd(2), read(2), write(2), close(2)); every pointer/length pair
// these declarations take is validated at each call site below.
unsafe extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// The reactor's readiness queue: an owned `epoll` instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (fd exhaustion).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; any flag value is
        // safe to pass and errors surface as -1/errno.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Registers `fd` for `interest` events under `token`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (bad fd, duplicate registration).
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` is a live, properly initialized EpollEvent on
        // this stack frame; the kernel reads it before the call
        // returns and keeps no reference to it.
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Deregisters `fd`. Harmless if the fd was never registered.
    pub fn del(&self, fd: RawFd) {
        let mut ev = EpollEvent::zeroed();
        // SAFETY: the event argument is ignored for EPOLL_CTL_DEL on
        // every kernel ≥ 2.6.9 but must still be a valid pointer; `ev`
        // lives on this stack frame for the duration of the call.
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) };
        let _ = rc; // ENOENT after a racy close is fine.
    }

    /// Blocks for up to `timeout_ms` (-1 = forever) and fills `events`
    /// with ready records, returning how many are valid. `EINTR`
    /// retries internally.
    ///
    /// # Errors
    ///
    /// Propagates non-`EINTR` `epoll_wait` failures.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let cap = events.len().min(c_int::MAX as usize) as c_int;
            // SAFETY: `events` is a live mutable slice; the kernel
            // writes at most `cap` records, which is bounded by the
            // slice length computed on the line above.
            let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), cap, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is a valid fd this struct exclusively
        // owns; it is closed exactly once, here.
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd other threads write to wake the reactor out
/// of `epoll_wait` (job completions finish on worker threads; the
/// reactor must flush their frames promptly).
#[derive(Debug)]
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter 0.
    ///
    /// # Errors
    ///
    /// Propagates `eventfd` failure (fd exhaustion).
    pub fn new() -> io::Result<WakeFd> {
        // SAFETY: eventfd takes no pointers; errors surface as
        // -1/errno.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Signals the reactor. Never blocks: if the 64-bit counter is
    /// already saturated the write fails with `EAGAIN`, which is fine —
    /// the reactor is provably about to wake anyway.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: `one` is 8 live bytes on this stack frame, the
        // exact write size eventfd(2) requires.
        let rc = unsafe { write(self.fd, (&raw const one).cast::<c_void>(), 8) };
        let _ = rc;
    }

    /// Clears pending wake signals so edge-triggered readiness re-arms.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: `buf` is 8 live mutable bytes on this stack frame,
        // the exact read size eventfd(2) produces.
        let rc = unsafe { read(self.fd, (&raw mut buf).cast::<c_void>(), 8) };
        let _ = rc; // EAGAIN = already drained.
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is a valid fd this struct exclusively
        // owns; it is closed exactly once, here.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakefd_round_trips_through_epoll() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.raw(), EPOLLIN | EPOLLET, 7).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing pending: a zero-timeout wait reports no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        wake.wake();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        // Copy out of the (packed) record before asserting.
        let (bits, token) = (events[0].events, events[0].data);
        assert_eq!(token, 7);
        assert_ne!(bits & EPOLLIN, 0);
        wake.drain();
        // Edge-triggered and drained: no respeak until the next wake.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        wake.wake();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
    }

    #[test]
    fn del_then_wait_reports_nothing() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.raw(), EPOLLIN | EPOLLET, 1).unwrap();
        wake.wake();
        ep.del(wake.raw());
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
