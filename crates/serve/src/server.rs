//! The TCP server: accept loop, per-connection readers, and the
//! batching dispatcher that maps request streams onto the work-stealing
//! sweep engine.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use gals_core::{McdConfig, SyncConfig};
use gals_explore::{MeasureItem, ResultCache, SweepEngine};
use gals_workloads::suite;

use crate::protocol::{Request, RequestKind, Response};

/// Poll granularity for connection readers checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long one response write may block on a non-reading client before
/// that client's connection is abandoned (see `connection_loop`).
const WRITE_STALL_LIMIT: Duration = Duration::from_secs(10);

/// Server configuration (bind address, parallelism, default window).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Sweep worker threads (0 = available parallelism).
    pub workers: usize,
    /// Window applied when a request passes `window: 0` or none.
    pub default_window: u64,
    /// Result-cache file (`None` = in-memory only).
    pub cache_path: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            default_window: 10_000,
            cache_path: None,
        }
    }
}

impl ServeConfig {
    /// Reads `GALS_SERVE_ADDR`, `GALS_SERVE_WORKERS`,
    /// `GALS_SERVE_WINDOW`, and `GALS_SERVE_CACHE` over the defaults.
    /// An *unset* `GALS_SERVE_CACHE` selects the standard file
    /// (`target/gals-serve-cache.json`); an *empty* one selects
    /// in-memory-only operation.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Ok(addr) = std::env::var("GALS_SERVE_ADDR") {
            cfg.addr = addr;
        }
        if let Some(w) = std::env::var("GALS_SERVE_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.workers = w;
        }
        if let Some(w) = std::env::var("GALS_SERVE_WINDOW")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.default_window = w;
        }
        cfg.cache_path = match std::env::var("GALS_SERVE_CACHE") {
            Ok(path) if path.is_empty() => None,
            Ok(path) => Some(path),
            Err(_) => Some("target/gals-serve-cache.json".to_string()),
        };
        cfg
    }
}

/// One client request expanded into measurable work, plus the channel
/// back to its connection.
struct Job {
    id: String,
    items: Vec<MeasureItem>,
    window: u64,
    writer: Arc<Mutex<TcpStream>>,
}

enum Msg {
    Job(Job),
    Shutdown,
}

/// Shared server state.
struct Inner {
    engine: SweepEngine,
    default_window: u64,
    shutdown: AtomicBool,
    requests: AtomicU64,
    batches: AtomicU64,
}

/// The `gals-serve` server: a long-lived, multi-tenant front end over
/// the sweep engine and its sharded result cache.
///
/// Concurrency model: each client connection gets a reader thread that
/// parses request lines and submits expanded work to a single batching
/// dispatcher. The dispatcher drains everything queued, merges
/// same-window work from different clients into one work-stealing
/// sweep (batch-internal duplicates are simulated exactly once), and
/// streams per-configuration results back to each client's socket as
/// they complete. Cache hits never re-simulate — and because the
/// simulator is deterministic, a result served through the server is
/// bit-identical to the same configuration run directly through
/// [`gals_explore::Explorer`].
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    inner: Arc<Inner>,
    tx: Sender<Msg>,
    accept_handle: Option<JoinHandle<()>>,
    dispatch_handle: Option<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("default_window", &self.default_window)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Propagates bind / cache-open I/O errors.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let cache = match &cfg.cache_path {
            Some(path) => ResultCache::open(path)?,
            None => ResultCache::in_memory(),
        };
        let mut engine = SweepEngine::new(cache);
        if cfg.workers > 0 {
            engine = engine.with_threads(cfg.workers);
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            engine,
            default_window: cfg.default_window.max(1),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let (tx, rx) = channel();
        let dispatch_handle = {
            let inner = inner.clone();
            std::thread::spawn(move || dispatch_loop(&inner, &rx))
        };
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let inner = inner.clone();
            let tx = tx.clone();
            let conn_handles = conn_handles.clone();
            std::thread::spawn(move || accept_loop(&listener, &inner, &tx, &conn_handles))
        };
        Ok(Server {
            addr,
            inner,
            tx,
            accept_handle: Some(accept_handle),
            dispatch_handle: Some(dispatch_handle),
            conn_handles,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Simulations executed so far (excludes cache hits).
    pub fn simulated_count(&self) -> u64 {
        self.inner.engine.simulated_count()
    }

    /// Stops accepting connections, completes in-flight work (results
    /// already submitted still stream back to their clients), persists
    /// the cache, and joins every server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Connection readers poll the flag and exit; join them so no new
        // jobs can be enqueued behind the shutdown marker.
        let handles = std::mem::take(
            &mut *self
                .conn_handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.dispatch_handle.take() {
            let _ = h.join();
        }
        let _ = self.inner.engine.save_cache();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    inner: &Arc<Inner>,
    tx: &Sender<Msg>,
    conn_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let inner = inner.clone();
        let tx = tx.clone();
        let handle = std::thread::spawn(move || connection_loop(stream, &inner, &tx));
        let mut handles = conn_handles.lock().unwrap_or_else(PoisonError::into_inner);
        // Reap readers whose clients hung up, so a long-lived server
        // under connection churn doesn't accumulate handles forever.
        handles.retain(|h: &JoinHandle<()>| !h.is_finished());
        handles.push(handle);
    }
}

fn write_line(writer: &Arc<Mutex<TcpStream>>, line: &str) {
    let mut guard = writer.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = guard.write_all(line.as_bytes());
    let _ = guard.write_all(b"\n");
    let _ = guard.flush();
}

fn connection_loop(stream: TcpStream, inner: &Arc<Inner>, tx: &Sender<Msg>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Responses are single lines; send them immediately (Nagle would
    // stall the request/response round trip by tens of milliseconds).
    let _ = stream.set_nodelay(true);
    // The single dispatcher thread streams results through blocking
    // writes: a client that stops reading must not stall every other
    // client's batch behind its full send buffer. On timeout the write
    // fails and that client's stream is the only casualty.
    let _ = stream.set_write_timeout(Some(WRITE_STALL_LIMIT));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => {
                // EOF. A partial line with no terminating newline is a
                // truncated request: tell the peer before hanging up (it
                // may only have shut down its write half).
                if !line.trim().is_empty() {
                    let resp = Response::Error {
                        id: String::new(),
                        message: "truncated request line".to_string(),
                    };
                    write_line(&writer, &resp.to_line());
                }
                return;
            }
            Ok(_) if line.ends_with('\n') => {
                if !line.trim().is_empty() {
                    handle_request(&line, inner, tx, &writer);
                }
                line.clear();
            }
            // Mid-line read: keep accumulating.
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_request(
    line: &str,
    inner: &Arc<Inner>,
    tx: &Sender<Msg>,
    writer: &Arc<Mutex<TcpStream>>,
) {
    inner.requests.fetch_add(1, Ordering::Relaxed);
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(message) => {
            write_line(
                writer,
                &Response::Error {
                    id: String::new(),
                    message,
                }
                .to_line(),
            );
            return;
        }
    };
    match expand(&req.kind, inner.default_window) {
        Ok(Expanded::Work { items, window }) => {
            let job = Job {
                id: req.id.clone(),
                items,
                window,
                writer: writer.clone(),
            };
            if tx.send(Msg::Job(job)).is_err() {
                write_line(
                    writer,
                    &Response::Error {
                        id: req.id,
                        message: "server shutting down".to_string(),
                    }
                    .to_line(),
                );
            }
        }
        Ok(Expanded::Status) => {
            let engine = &inner.engine;
            let resp = Response::Status {
                id: req.id,
                counters: vec![
                    (
                        "requests".to_string(),
                        inner.requests.load(Ordering::Relaxed) as f64,
                    ),
                    (
                        "batches".to_string(),
                        inner.batches.load(Ordering::Relaxed) as f64,
                    ),
                    ("simulated".to_string(), engine.simulated_count() as f64),
                    ("cache_hits".to_string(), engine.cache_hit_count() as f64),
                    ("cache_len".to_string(), engine.cache().len() as f64),
                    ("workers".to_string(), engine.threads() as f64),
                ],
            };
            write_line(writer, &resp.to_line());
        }
        Err(message) => {
            write_line(
                writer,
                &Response::Error {
                    id: req.id,
                    message,
                }
                .to_line(),
            );
        }
    }
}

enum Expanded {
    Work {
        items: Vec<MeasureItem>,
        window: u64,
    },
    Status,
}

/// Expands a request into concrete sweep work (the same
/// (spec, mode, key, machine) tuples the `Explorer` sweeps build, so
/// cache entries are shared between the server and offline sweeps).
fn expand(kind: &RequestKind, default_window: u64) -> Result<Expanded, String> {
    let lookup =
        |name: &str| suite::by_name(name).ok_or_else(|| format!("unknown benchmark {name:?}"));
    let eff = |w: u64| if w == 0 { default_window } else { w };
    match kind {
        RequestKind::Status => Ok(Expanded::Status),
        RequestKind::RunConfig {
            bench,
            mode,
            cfg,
            policy,
            window,
        } => {
            let spec = lookup(bench)?;
            let item = match mode.as_str() {
                "sync" => {
                    let configs = SyncConfig::enumerate();
                    let c = *configs
                        .get(cfg.ok_or("missing cfg")?)
                        .ok_or_else(|| format!("sync cfg out of range (0..{})", configs.len()))?;
                    MeasureItem::sync(spec, c)
                }
                "prog" => {
                    let configs = McdConfig::enumerate();
                    let c = *configs
                        .get(cfg.ok_or("missing cfg")?)
                        .ok_or_else(|| format!("prog cfg out of range (0..{})", configs.len()))?;
                    MeasureItem::program(spec, c)
                }
                "phase" => MeasureItem::phase(spec, policy.unwrap_or_default()),
                other => return Err(format!("unknown mode {other:?}")),
            };
            Ok(Expanded::Work {
                items: vec![item],
                window: eff(*window),
            })
        }
        RequestKind::Sweep {
            bench,
            mode,
            window,
        } => {
            let spec = lookup(bench)?;
            let items = match mode.as_str() {
                "sync" => SyncConfig::enumerate()
                    .into_iter()
                    .map(|c| MeasureItem::sync(spec.clone(), c))
                    .collect(),
                "prog" => McdConfig::enumerate()
                    .into_iter()
                    .map(|c| MeasureItem::program(spec.clone(), c))
                    .collect(),
                other => return Err(format!("sweep mode must be sync or prog, got {other:?}")),
            };
            Ok(Expanded::Work {
                items,
                window: eff(*window),
            })
        }
        RequestKind::PolicyCompare {
            bench,
            policies,
            window,
        } => {
            let spec = lookup(bench)?;
            let items = policies
                .iter()
                .map(|&policy| MeasureItem::phase(spec.clone(), policy))
                .collect();
            Ok(Expanded::Work {
                items,
                window: eff(*window),
            })
        }
    }
}

/// The batching dispatcher: drains everything queued, merges same-window
/// jobs from different clients into one work-stealing sweep, and streams
/// results back per client as they complete.
fn dispatch_loop(inner: &Arc<Inner>, rx: &Receiver<Msg>) {
    loop {
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => return,
        };
        let mut jobs = Vec::new();
        let mut shutdown = false;
        match first {
            Msg::Job(j) => jobs.push(j),
            Msg::Shutdown => shutdown = true,
        }
        while let Ok(msg) = rx.try_recv() {
            match msg {
                Msg::Job(j) => jobs.push(j),
                Msg::Shutdown => shutdown = true,
            }
        }
        if !jobs.is_empty() {
            run_batch(inner, jobs);
        }
        if shutdown {
            return;
        }
    }
}

fn run_batch(inner: &Arc<Inner>, jobs: Vec<Job>) {
    inner.batches.fetch_add(1, Ordering::Relaxed);
    // One engine call per distinct window; same-window jobs from
    // different clients share one sweep (and batch-internal dedupe).
    let mut windows: Vec<u64> = jobs.iter().map(|j| j.window).collect();
    windows.sort_unstable();
    windows.dedup();
    for window in windows {
        let group: Vec<&Job> = jobs.iter().filter(|j| j.window == window).collect();
        // Flatten with provenance.
        let mut work: Vec<MeasureItem> = Vec::new();
        let mut origin: Vec<(usize, usize)> = Vec::new(); // (job, item-in-job)
        for (ji, job) in group.iter().enumerate() {
            for (ii, item) in job.items.iter().enumerate() {
                work.push(item.clone());
                origin.push((ji, ii));
            }
        }
        // Pre-probe the cache so result lines can carry an honest
        // `cached` flag (the engine's resolve phase will hit the same
        // entries).
        let cached: Vec<bool> = work
            .iter()
            .map(|it| inner.engine.cache().get(&it.cache_key(window)).is_some())
            .collect();
        let origin = &origin;
        let cached = &cached;
        let group = &group;
        inner.engine.measure_with(&work, window, |gi, ns| {
            let (ji, ii) = origin[gi];
            let job = group[ji];
            let resp = Response::Result {
                id: job.id.clone(),
                key: job.items[ii].config_key.clone(),
                // A panicked simulation reports 0 (unusable by
                // convention, matching the explorer's validity rule).
                runtime_ns: if ns.is_finite() { ns } else { 0.0 },
                cached: cached[gi],
            };
            write_line(&job.writer, &resp.to_line());
        });
        for job in group {
            let resp = Response::Done {
                id: job.id.clone(),
                results: job.items.len() as u64,
            };
            write_line(&job.writer, &resp.to_line());
        }
    }
}
