//! The TCP server: transport front ends (epoll reactor or
//! thread-per-connection) over the shared job scheduler + worker pool
//! that executes every client's work.
//!
//! There is no batching dispatcher and no per-window grouping: each
//! connection expands requests into typed [`Job`]s and admits them into
//! one [`JobScheduler`] shared by every connection; a pool of worker
//! threads drains it in priority/aging order, streaming each job's
//! frame back to its requester the moment it resolves. Heterogeneous
//! work — mixed windows, machine styles, policies, priorities,
//! deadlines — interleaves freely in a single queue pass.
//!
//! Two transports feed that queue (selected by
//! [`ServeConfig::transport`], default [`Transport::Reactor`] on
//! Linux):
//!
//! * **Reactor** — one event-loop thread multiplexes every connection
//!   over epoll (see [`crate::reactor`]): nonblocking sockets,
//!   edge-triggered readiness, bounded per-connection outbound queues,
//!   per-connection in-flight quotas. Scales to hundreds of mostly
//!   idle connections without a thread per socket.
//! * **Threads** — the original blocking model: one reader thread per
//!   connection, blocking writes with stall timeouts. Kept as the
//!   portable fallback (`GALS_MCD_SERVE_TRANSPORT=threads`).
//!
//! Both transports share the request expansion, admission, and
//! completion paths below, so the wire contract — including the
//! drains-or-expires shutdown guarantee — is transport-independent.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gals_core::{McdConfig, SyncConfig};
use gals_explore::sched::Completion;
use gals_explore::{Job, JobOutcome, JobScheduler, MeasureItem, ResultCache, SweepEngine};
use gals_workloads::suite;

use crate::protocol::{BoundedLineReader, LineRead, Request, RequestKind, Response, MAX_LINE_LEN};

/// Poll granularity for connection readers checking the shutdown flag
/// (threads transport).
const READ_POLL: Duration = Duration::from_millis(100);

/// How long one response write may stall on a non-reading client before
/// that client's connection is abandoned (both transports; the reactor
/// measures it as time-since-last-flush-progress).
pub(crate) const WRITE_STALL_LIMIT: Duration = Duration::from_secs(10);

/// Which connection front end moves bytes for the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// One epoll event-loop thread multiplexing every connection
    /// (Linux; the default there).
    Reactor,
    /// One blocking reader thread per connection (portable fallback).
    Threads,
}

impl Transport {
    /// The platform default: the reactor on Linux, threads elsewhere.
    pub fn default_for_target() -> Transport {
        if cfg!(target_os = "linux") {
            Transport::Reactor
        } else {
            Transport::Threads
        }
    }
}

/// Server configuration (bind address, parallelism, default window).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Scheduler worker threads (0 = available parallelism).
    pub workers: usize,
    /// Window applied when a request passes `window: 0` or none.
    pub default_window: u64,
    /// Result-cache file (`None` = in-memory only).
    pub cache_path: Option<String>,
    /// Scheduler aging step: a queued job is bypassed by at most
    /// `priority_level_difference × aging_step` later admissions
    /// before it runs (see [`JobScheduler`]).
    pub aging_step: u64,
    /// Connection front end (see [`Transport`]).
    pub transport: Transport,
    /// Reactor backpressure bound: bytes of un-flushed response frames
    /// one connection may queue before it is declared dead (a slow
    /// reader must not buffer unboundedly).
    pub max_outbound_bytes: usize,
    /// Reactor fairness quota: jobs one connection may have admitted
    /// but unresolved before its further requests wait (and, with its
    /// socket unread, backpressure the client). A single request
    /// larger than the quota still admits alone — the quota bounds
    /// concurrency, not request size.
    pub conn_inflight_limit: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            default_window: 10_000,
            cache_path: None,
            aging_step: JobScheduler::DEFAULT_AGING_STEP,
            transport: Transport::default_for_target(),
            max_outbound_bytes: 4 << 20,
            conn_inflight_limit: 2048,
        }
    }
}

impl ServeConfig {
    /// Reads `GALS_SERVE_ADDR`, `GALS_SERVE_WORKERS`,
    /// `GALS_SERVE_WINDOW`, `GALS_SERVE_CACHE`, `GALS_SERVE_AGING`,
    /// `GALS_MCD_SERVE_TRANSPORT` (`reactor` / `threads`),
    /// `GALS_SERVE_MAX_OUTBOUND`, and `GALS_SERVE_CONN_INFLIGHT` over
    /// the defaults. An *unset* `GALS_SERVE_CACHE` selects the
    /// standard file (`target/gals-serve-cache.json`); an *empty* one
    /// selects in-memory-only operation.
    pub fn from_env() -> Self {
        use gals_common::env::{parse_env_or, var};
        let mut cfg = ServeConfig::default();
        if let Some(addr) = var("GALS_SERVE_ADDR") {
            cfg.addr = addr;
        }
        cfg.workers = parse_env_or("GALS_SERVE_WORKERS", cfg.workers);
        cfg.default_window = parse_env_or("GALS_SERVE_WINDOW", cfg.default_window);
        cfg.aging_step = parse_env_or("GALS_SERVE_AGING", cfg.aging_step);
        cfg.cache_path = match var("GALS_SERVE_CACHE") {
            Some(path) if path.is_empty() => None,
            Some(path) => Some(path),
            None => Some("target/gals-serve-cache.json".to_string()),
        };
        match var("GALS_MCD_SERVE_TRANSPORT").as_deref() {
            None => {}
            Some("reactor") => cfg.transport = Transport::Reactor,
            Some("threads") => cfg.transport = Transport::Threads,
            Some(other) => eprintln!(
                "warning: ignoring GALS_MCD_SERVE_TRANSPORT={other:?}: \
                 expected reactor or threads; using default"
            ),
        }
        cfg.max_outbound_bytes = parse_env_or("GALS_SERVE_MAX_OUTBOUND", cfg.max_outbound_bytes);
        cfg.conn_inflight_limit = parse_env_or("GALS_SERVE_CONN_INFLIGHT", cfg.conn_inflight_limit);
        cfg
    }
}

/// Where one connection's response frames go. The worker pool resolves
/// jobs for every connection; each transport supplies its own sink —
/// blocking mutex-guarded writes (threads) or a bounded queue the
/// reactor flushes (reactor). A sink never blocks the caller beyond
/// the threads transport's bounded write stall.
pub(crate) trait FrameSink: Send + Sync {
    /// Queues or writes one encoded frame line (without the newline).
    fn send_frame(&self, line: &str);
}

/// The threads transport's sink: a mutex-serialized blocking writer
/// with the connection's dead flag.
pub(crate) struct ThreadsSink {
    writer: Mutex<TcpStream>,
    /// Shared per connection and set on the first failed frame write
    /// (client stalled past `WRITE_STALL_LIMIT` or hung up): every
    /// later frame to that connection — across all its pipelined
    /// requests — is skipped, so one dead connection costs the worker
    /// pool at most one write-stall total.
    dead: Arc<AtomicBool>,
}

impl FrameSink for ThreadsSink {
    /// Writes one frame unless the connection is already dead,
    /// poisoning it on the first failure. The flag is re-checked
    /// *after* acquiring the writer lock: workers already queued on the
    /// mutex behind the one discovering the stall must bail out
    /// immediately instead of each paying `WRITE_STALL_LIMIT` in turn.
    fn send_frame(&self, line: &str) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut guard = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let ok = guard.write_all(line.as_bytes()).is_ok()
            && guard.write_all(b"\n").is_ok()
            && guard.flush().is_ok();
        if !ok {
            self.dead.store(true, Ordering::Relaxed);
        }
    }
}

/// Per-request progress: counts the request's jobs down to the `done`
/// frame. Job completions (from any worker) send their frame, bump
/// the tallies, and whoever resolves the last job emits `done`.
struct RequestState {
    id: String,
    sink: Arc<dyn FrameSink>,
    remaining: AtomicUsize,
    results: AtomicU64,
    expired: AtomicU64,
    /// The owning connection's dead flag (shared with its jobs as the
    /// cancellation token; see [`ThreadsSink::dead`] for the threads
    /// transport's write-failure semantics).
    dead: Arc<AtomicBool>,
}

impl RequestState {
    /// Records one job's outcome: sends its frame, and the `done`
    /// frame after the request's last job.
    fn complete_one(&self, key: &str, outcome: JobOutcome, inner: &Inner) {
        let frame = match outcome {
            JobOutcome::Completed { runtime_ns, cached } => {
                self.results.fetch_add(1, Ordering::Relaxed);
                Response::Partial {
                    id: self.id.clone(),
                    key: key.to_string(),
                    runtime_ns,
                    cached,
                }
            }
            // A panicked simulation reports 0 (unusable by convention,
            // matching the explorer's validity rule).
            JobOutcome::Panicked => {
                self.results.fetch_add(1, Ordering::Relaxed);
                Response::Partial {
                    id: self.id.clone(),
                    key: key.to_string(),
                    runtime_ns: 0.0,
                    cached: false,
                }
            }
            JobOutcome::Expired => {
                self.expired.fetch_add(1, Ordering::Relaxed);
                // Keep the operator-facing signals honest: a job that
                // expired because its connection died is disconnect
                // churn, not deadline pressure.
                if self.dead.load(Ordering::Relaxed) {
                    inner.cancelled.fetch_add(1, Ordering::Relaxed);
                } else {
                    inner.expired.fetch_add(1, Ordering::Relaxed);
                }
                Response::Expired {
                    id: self.id.clone(),
                    key: key.to_string(),
                }
            }
        };
        self.sink.send_frame(&frame.to_line());
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let done = Response::Done {
                id: self.id.clone(),
                results: self.results.load(Ordering::Relaxed),
                expired: self.expired.load(Ordering::Relaxed),
            };
            self.sink.send_frame(&done.to_line());
        }
    }
}

/// Shared server state.
pub(crate) struct Inner {
    pub(crate) engine: SweepEngine,
    pub(crate) sched: JobScheduler<'static>,
    pub(crate) default_window: u64,
    pub(crate) shutdown: AtomicBool,
    pub(crate) requests: AtomicU64,
    pub(crate) admitted_jobs: AtomicU64,
    pub(crate) expired: AtomicU64,
    /// Jobs dropped because their connection died (distinct from
    /// deadline expiries).
    pub(crate) cancelled: AtomicU64,
}

/// The `gals-serve` server: a long-lived, multi-tenant front end over
/// the job scheduler and the sweep engine's sharded result cache.
///
/// Concurrency model: a transport front end (epoll reactor or
/// per-connection reader threads) parses request lines, expands them
/// into jobs tagged with the request id, and admits them — atomically
/// per request — into the single shared [`JobScheduler`]. Worker
/// threads pull jobs in priority/aging order regardless of which
/// connection admitted them and stream `partial` / `expired` frames
/// back per job; the last job of a request emits its `done` frame.
/// Duplicate configurations are simulated once (in-flight dedupe plus
/// the shared cache) — and because the simulator is deterministic, a
/// result served through the server is bit-identical to the same
/// configuration run directly through [`gals_explore::Explorer`],
/// regardless of scheduling order or transport.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    inner: Arc<Inner>,
    transport: Transport,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    #[cfg(target_os = "linux")]
    reactor: Option<crate::reactor::ReactorHandle>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("default_window", &self.default_window)
            .field("queued", &self.sched.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds, starts the worker pool and the configured transport, and
    /// serves in background threads.
    ///
    /// # Errors
    ///
    /// Propagates bind / cache-open / epoll-setup I/O errors.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let cache = match &cfg.cache_path {
            Some(path) => {
                let cache = ResultCache::open(path)?;
                let report = cache.recovery();
                if report.had_damage() {
                    eprintln!(
                        "gals-serve: result cache {path} recovered after unclean shutdown: \
                         {} checkpoint entries + {} WAL records replayed ({:?})",
                        report.checkpoint_entries, report.wal_records_replayed, report
                    );
                } else if report.wal_records_replayed > 0 {
                    eprintln!(
                        "gals-serve: result cache {path}: replayed {} WAL records past the \
                         last checkpoint",
                        report.wal_records_replayed
                    );
                }
                cache
            }
            None => ResultCache::in_memory(),
        };
        let mut engine = SweepEngine::new(cache);
        if cfg.workers > 0 {
            engine = engine.with_threads(cfg.workers);
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            engine,
            sched: JobScheduler::with_aging_step(cfg.aging_step),
            default_window: cfg.default_window.max(1),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            admitted_jobs: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        });
        let worker_handles: Vec<JoinHandle<()>> = (0..inner.engine.threads())
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || inner.engine.serve_jobs(&inner.sched))
            })
            .collect();
        // The reactor requires Linux epoll; elsewhere every config
        // falls back to the portable threads transport.
        let transport = if cfg!(target_os = "linux") {
            cfg.transport
        } else {
            Transport::Threads
        };
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let mut server = Server {
            addr,
            inner,
            transport,
            accept_handle: None,
            worker_handles,
            conn_handles,
            #[cfg(target_os = "linux")]
            reactor: None,
        };
        match transport {
            #[cfg(target_os = "linux")]
            Transport::Reactor => {
                server.reactor = Some(crate::reactor::spawn(
                    listener,
                    server.inner.clone(),
                    crate::reactor::ReactorOptions {
                        max_outbound_bytes: cfg.max_outbound_bytes.max(MAX_LINE_LEN + 1),
                        conn_inflight_limit: cfg.conn_inflight_limit.max(1),
                    },
                )?);
            }
            #[cfg(not(target_os = "linux"))]
            Transport::Reactor => unreachable!("reactor transport forced off above"),
            Transport::Threads => {
                let inner = server.inner.clone();
                let conn_handles = server.conn_handles.clone();
                server.accept_handle = Some(std::thread::spawn(move || {
                    accept_loop(&listener, &inner, &conn_handles)
                }));
            }
        }
        Ok(server)
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The transport actually serving connections.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Simulations executed so far (excludes cache hits).
    pub fn simulated_count(&self) -> u64 {
        self.inner.engine.simulated_count()
    }

    /// Jobs that expired at their deadlines so far (jobs dropped for a
    /// dead connection count separately, in the `cancelled` status
    /// counter).
    pub fn expired_count(&self) -> u64 {
        self.inner.expired.load(Ordering::Relaxed)
    }

    /// Jobs dropped because their connection died.
    pub fn cancelled_count(&self) -> u64 {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Benchmarks currently resident in this server's trace pool
    /// (shard-residency introspection for the router tests and bench).
    pub fn trace_pool_benchmarks(&self) -> Vec<String> {
        self.inner.engine.trace_pool_benchmarks()
    }

    /// Graceful shutdown: stops accepting connections and admitting
    /// requests, then **drains-or-expires** the queue — every admitted
    /// job still completes (or expires at its deadline) and every
    /// frame, including each request's `done`, is flushed to its
    /// client *before* any connection closes — persists the cache, and
    /// joins every server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        #[cfg(target_os = "linux")]
        if let Some(mut reactor) = self.reactor.take() {
            // The reactor notices the flag, stops admitting, closes the
            // scheduler itself (it is the sole admitter), and exits
            // only after every owed frame is flushed or its connection
            // is provably dead.
            reactor.wake();
            reactor.join();
            for h in self.worker_handles.drain(..) {
                let _ = h.join();
            }
            // Final durable checkpoint; a failure here means restart
            // will replay from the WAL instead, so warn, don't panic.
            if let Err(e) = self.inner.engine.save_cache() {
                eprintln!(
                    "gals-serve: final cache checkpoint failed ({e}); results remain in the WAL"
                );
            }
            return;
        }
        // Threads transport. Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Connection readers poll the flag and exit; join them so no
        // request can be admitted after the scheduler closes (a reader
        // mid-request either finishes admitting before it exits or
        // never admits — requests are admitted atomically).
        let handles = std::mem::take(
            &mut *self
                .conn_handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
        // Close the queue and let the workers drain it: every admitted
        // job's frame — and every request's done frame — is written
        // before the workers exit. Connections close only after that
        // (each socket's last writer handle lives in its requests'
        // states, which the completions drop), so a shutting-down
        // server can never swallow results it already owes a client.
        self.inner.sched.close();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        // Final durable checkpoint; a failure here means restart will
        // replay from the WAL instead, so warn, don't panic.
        if let Err(e) = self.inner.engine.save_cache() {
            eprintln!("gals-serve: final cache checkpoint failed ({e}); results remain in the WAL");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    inner: &Arc<Inner>,
    conn_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let inner = inner.clone();
        let handle = std::thread::spawn(move || connection_loop(stream, &inner));
        let mut handles = conn_handles.lock().unwrap_or_else(PoisonError::into_inner);
        // Reap readers whose clients hung up, so a long-lived server
        // under connection churn doesn't accumulate handles forever.
        handles.retain(|h: &JoinHandle<()>| !h.is_finished());
        handles.push(handle);
    }
}

fn connection_loop(stream: TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Responses are single lines; send them immediately (Nagle would
    // stall the request/response round trip by tens of milliseconds).
    let _ = stream.set_nodelay(true);
    // Workers stream results through blocking writes: a client that
    // stops reading must not stall the worker pool behind its full
    // send buffer. On timeout the write fails and that client's stream
    // is the only casualty.
    let _ = stream.set_write_timeout(Some(WRITE_STALL_LIMIT));
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let dead = Arc::new(AtomicBool::new(false));
    let sink: Arc<dyn FrameSink> = Arc::new(ThreadsSink {
        writer: Mutex::new(writer),
        dead: dead.clone(),
    });
    let mut reader = BufReader::new(stream);
    let mut lines = BoundedLineReader::new();
    loop {
        match lines.read_line(&mut reader) {
            Ok(LineRead::Line) => {
                let line = lines.line();
                if !line.trim().is_empty() {
                    handle_request(&line, inner, &sink, &dead);
                }
            }
            Ok(LineRead::TooLong) => {
                let resp = Response::Error {
                    id: String::new(),
                    message: format!("request line exceeds {MAX_LINE_LEN} bytes"),
                };
                sink.send_frame(&resp.to_line());
            }
            Ok(LineRead::Eof) => {
                // EOF. A partial line with no terminating newline is a
                // truncated request: tell the peer before hanging up (it
                // may only have shut down its write half).
                if !lines.partial().is_empty() {
                    let resp = Response::Error {
                        id: String::new(),
                        message: "truncated request line".to_string(),
                    };
                    sink.send_frame(&resp.to_line());
                }
                return;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Assembles the `status` response's counters (both transports).
pub(crate) fn status_response(id: String, inner: &Inner) -> Response {
    let engine = &inner.engine;
    Response::Status {
        id,
        counters: vec![
            (
                "requests".to_string(),
                inner.requests.load(Ordering::Relaxed) as f64,
            ),
            (
                "admitted_jobs".to_string(),
                inner.admitted_jobs.load(Ordering::Relaxed) as f64,
            ),
            ("queued".to_string(), inner.sched.len() as f64),
            (
                "expired".to_string(),
                inner.expired.load(Ordering::Relaxed) as f64,
            ),
            (
                "cancelled".to_string(),
                inner.cancelled.load(Ordering::Relaxed) as f64,
            ),
            ("simulated".to_string(), engine.simulated_count() as f64),
            ("cache_hits".to_string(), engine.cache_hit_count() as f64),
            ("cache_len".to_string(), engine.cache().len() as f64),
            ("workers".to_string(), engine.threads() as f64),
        ],
    }
}

/// Parses and dispatches one request line (threads transport; the
/// reactor drives [`expand`]/[`admit`] itself so it can apply its
/// fairness quota between the two).
fn handle_request(
    line: &str,
    inner: &Arc<Inner>,
    sink: &Arc<dyn FrameSink>,
    dead: &Arc<AtomicBool>,
) {
    inner.requests.fetch_add(1, Ordering::Relaxed);
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(message) => {
            sink.send_frame(
                &Response::Error {
                    id: String::new(),
                    message,
                }
                .to_line(),
            );
            return;
        }
    };
    match expand(&req.kind, inner.default_window) {
        Ok(Expanded::Work { items, window }) => {
            admit(req, items, window, inner, sink, dead, None);
        }
        Ok(Expanded::Status) => {
            sink.send_frame(&status_response(req.id, inner).to_line());
        }
        Err(message) => {
            sink.send_frame(
                &Response::Error {
                    id: req.id,
                    message,
                }
                .to_line(),
            );
        }
    }
}

/// Builds one request's jobs and admits them into the shared scheduler
/// as one atomic batch, returning whether admission succeeded (it
/// fails only against a closed, shutting-down scheduler — the peer
/// gets an error frame then).
///
/// `resolved`, when supplied (reactor transport), runs after *each*
/// job's completion frame is queued — the reactor's accounting hook
/// for its global outstanding-jobs count and the connection's
/// fairness quota.
pub(crate) fn admit(
    req: Request,
    items: Vec<MeasureItem>,
    window: u64,
    inner: &Arc<Inner>,
    sink: &Arc<dyn FrameSink>,
    dead: &Arc<AtomicBool>,
    resolved: Option<Arc<dyn Fn() + Send + Sync>>,
) -> bool {
    // checked_add: a huge client-supplied deadline_ms must not panic
    // the connection thread on targets with a narrow Instant; a
    // deadline too far away to represent is no deadline at all.
    let deadline = req
        .deadline_ms
        .and_then(|ms| Instant::now().checked_add(Duration::from_millis(ms)));
    let state = Arc::new(RequestState {
        id: req.id.clone(),
        sink: sink.clone(),
        remaining: AtomicUsize::new(items.len()),
        results: AtomicU64::new(0),
        expired: AtomicU64::new(0),
        dead: dead.clone(),
    });
    let n_jobs = items.len() as u64;
    let batch: Vec<(Job, Completion<'static>)> = items
        .into_iter()
        .map(|item| {
            let mut job = Job::new(item, window)
                .with_priority(req.priority)
                // The connection's dead flag doubles as the jobs'
                // cancellation token: once the client is gone, its
                // queued work expires instead of simulating.
                .with_cancel_flag(dead.clone())
                .with_tag(req.id.clone());
            if let Some(d) = deadline {
                job = job.with_deadline(d);
            }
            let state = state.clone();
            let inner = inner.clone();
            let resolved = resolved.clone();
            let complete = Box::new(move |job: Job, outcome: JobOutcome| {
                state.complete_one(&job.item.config_key, outcome, &inner);
                if let Some(resolved) = &resolved {
                    resolved();
                }
            }) as Completion<'static>;
            (job, complete)
        })
        .collect();
    if inner.sched.submit_batch(batch) {
        inner.admitted_jobs.fetch_add(n_jobs, Ordering::Relaxed);
        true
    } else {
        sink.send_frame(
            &Response::Error {
                id: req.id,
                message: "server shutting down".to_string(),
            }
            .to_line(),
        );
        false
    }
}

pub(crate) enum Expanded {
    Work {
        items: Vec<MeasureItem>,
        window: u64,
    },
    Status,
}

/// Expands a request into concrete measurable items (the same
/// (spec, mode, key, machine) tuples the `Explorer` sweeps build, so
/// cache entries are shared between the server and offline sweeps).
pub(crate) fn expand(kind: &RequestKind, default_window: u64) -> Result<Expanded, String> {
    let lookup =
        |name: &str| suite::by_name(name).ok_or_else(|| format!("unknown benchmark {name:?}"));
    let eff = |w: u64| if w == 0 { default_window } else { w };
    match kind {
        RequestKind::Status => Ok(Expanded::Status),
        RequestKind::RunConfig {
            bench,
            mode,
            cfg,
            policy,
            window,
        } => {
            let spec = lookup(bench)?;
            let item = match mode.as_str() {
                "sync" => {
                    let configs = SyncConfig::enumerate();
                    let c = *configs
                        .get(cfg.ok_or("missing cfg")?)
                        .ok_or_else(|| format!("sync cfg out of range (0..{})", configs.len()))?;
                    MeasureItem::sync(spec, c)
                }
                "prog" => {
                    let configs = McdConfig::enumerate();
                    let c = *configs
                        .get(cfg.ok_or("missing cfg")?)
                        .ok_or_else(|| format!("prog cfg out of range (0..{})", configs.len()))?;
                    MeasureItem::program(spec, c)
                }
                "phase" => MeasureItem::phase(spec, policy.unwrap_or_default()),
                other => return Err(format!("unknown mode {other:?}")),
            };
            Ok(Expanded::Work {
                items: vec![item],
                window: eff(*window),
            })
        }
        RequestKind::Sweep {
            bench,
            mode,
            window,
        } => {
            let spec = lookup(bench)?;
            let items = match mode.as_str() {
                "sync" => SyncConfig::enumerate()
                    .into_iter()
                    .map(|c| MeasureItem::sync(spec.clone(), c))
                    .collect(),
                "prog" => McdConfig::enumerate()
                    .into_iter()
                    .map(|c| MeasureItem::program(spec.clone(), c))
                    .collect(),
                other => return Err(format!("sweep mode must be sync or prog, got {other:?}")),
            };
            Ok(Expanded::Work {
                items,
                window: eff(*window),
            })
        }
        RequestKind::PolicyCompare {
            bench,
            policies,
            window,
        } => {
            let spec = lookup(bench)?;
            let items = policies
                .iter()
                .map(|&policy| MeasureItem::phase(spec.clone(), policy))
                .collect();
            Ok(Expanded::Work {
                items,
                window: eff(*window),
            })
        }
    }
}
