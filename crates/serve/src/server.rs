//! The TCP server: accept loop, per-connection readers, and the shared
//! job scheduler + worker pool that executes every client's work.
//!
//! There is no batching dispatcher and no per-window grouping: each
//! connection expands requests into typed [`Job`]s and admits them into
//! one [`JobScheduler`] shared by every connection; a pool of worker
//! threads drains it in priority/aging order, streaming each job's
//! frame back to its requester the moment it resolves. Heterogeneous
//! work — mixed windows, machine styles, policies, priorities,
//! deadlines — interleaves freely in a single queue pass.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gals_core::{McdConfig, SyncConfig};
use gals_explore::sched::Completion;
use gals_explore::{Job, JobOutcome, JobScheduler, MeasureItem, ResultCache, SweepEngine};
use gals_workloads::suite;

use crate::protocol::{Request, RequestKind, Response};

/// Poll granularity for connection readers checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long one response write may block on a non-reading client before
/// that client's connection is abandoned (see `connection_loop`).
const WRITE_STALL_LIMIT: Duration = Duration::from_secs(10);

/// Server configuration (bind address, parallelism, default window).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Scheduler worker threads (0 = available parallelism).
    pub workers: usize,
    /// Window applied when a request passes `window: 0` or none.
    pub default_window: u64,
    /// Result-cache file (`None` = in-memory only).
    pub cache_path: Option<String>,
    /// Scheduler aging step: a queued job is bypassed by at most
    /// `priority_level_difference × aging_step` later admissions
    /// before it runs (see [`JobScheduler`]).
    pub aging_step: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            default_window: 10_000,
            cache_path: None,
            aging_step: JobScheduler::DEFAULT_AGING_STEP,
        }
    }
}

impl ServeConfig {
    /// Reads `GALS_SERVE_ADDR`, `GALS_SERVE_WORKERS`,
    /// `GALS_SERVE_WINDOW`, `GALS_SERVE_CACHE`, and `GALS_SERVE_AGING`
    /// over the defaults. An *unset* `GALS_SERVE_CACHE` selects the
    /// standard file (`target/gals-serve-cache.json`); an *empty* one
    /// selects in-memory-only operation.
    pub fn from_env() -> Self {
        use gals_common::env::{parse_env_or, var};
        let mut cfg = ServeConfig::default();
        if let Some(addr) = var("GALS_SERVE_ADDR") {
            cfg.addr = addr;
        }
        cfg.workers = parse_env_or("GALS_SERVE_WORKERS", cfg.workers);
        cfg.default_window = parse_env_or("GALS_SERVE_WINDOW", cfg.default_window);
        cfg.aging_step = parse_env_or("GALS_SERVE_AGING", cfg.aging_step);
        cfg.cache_path = match var("GALS_SERVE_CACHE") {
            Some(path) if path.is_empty() => None,
            Some(path) => Some(path),
            None => Some("target/gals-serve-cache.json".to_string()),
        };
        cfg
    }
}

/// Per-request progress: counts the request's jobs down to the `done`
/// frame. Job completions (from any worker) write their frame, bump
/// the tallies, and whoever resolves the last job emits `done`.
struct RequestState {
    id: String,
    writer: Arc<Mutex<TcpStream>>,
    remaining: AtomicUsize,
    results: AtomicU64,
    expired: AtomicU64,
    /// Shared per *connection* (not per request) and set on the first
    /// failed frame write (client stalled past `WRITE_STALL_LIMIT` or
    /// hung up): every later frame to that connection — across all its
    /// pipelined requests — is skipped, so one dead connection costs
    /// the worker pool at most one write-stall total.
    dead: Arc<AtomicBool>,
}

impl RequestState {
    /// Records one job's outcome: writes its frame, and the `done`
    /// frame after the request's last job.
    fn complete_one(&self, key: &str, outcome: JobOutcome, inner: &Inner) {
        let frame = match outcome {
            JobOutcome::Completed { runtime_ns, cached } => {
                self.results.fetch_add(1, Ordering::Relaxed);
                Response::Partial {
                    id: self.id.clone(),
                    key: key.to_string(),
                    runtime_ns,
                    cached,
                }
            }
            // A panicked simulation reports 0 (unusable by convention,
            // matching the explorer's validity rule).
            JobOutcome::Panicked => {
                self.results.fetch_add(1, Ordering::Relaxed);
                Response::Partial {
                    id: self.id.clone(),
                    key: key.to_string(),
                    runtime_ns: 0.0,
                    cached: false,
                }
            }
            JobOutcome::Expired => {
                self.expired.fetch_add(1, Ordering::Relaxed);
                // Keep the operator-facing signals honest: a job that
                // expired because its connection died is disconnect
                // churn, not deadline pressure.
                if self.dead.load(Ordering::Relaxed) {
                    inner.cancelled.fetch_add(1, Ordering::Relaxed);
                } else {
                    inner.expired.fetch_add(1, Ordering::Relaxed);
                }
                Response::Expired {
                    id: self.id.clone(),
                    key: key.to_string(),
                }
            }
        };
        self.write_frame(&frame.to_line());
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let done = Response::Done {
                id: self.id.clone(),
                results: self.results.load(Ordering::Relaxed),
                expired: self.expired.load(Ordering::Relaxed),
            };
            self.write_frame(&done.to_line());
        }
    }

    /// Writes one frame unless the connection is already dead,
    /// poisoning it on the first failure. The flag is re-checked
    /// *after* acquiring the writer lock: workers already queued on the
    /// mutex behind the one discovering the stall must bail out
    /// immediately instead of each paying `WRITE_STALL_LIMIT` in turn.
    fn write_frame(&self, line: &str) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut guard = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let ok = guard.write_all(line.as_bytes()).is_ok()
            && guard.write_all(b"\n").is_ok()
            && guard.flush().is_ok();
        if !ok {
            self.dead.store(true, Ordering::Relaxed);
        }
    }
}

/// Shared server state.
struct Inner {
    engine: SweepEngine,
    sched: JobScheduler<'static>,
    default_window: u64,
    shutdown: AtomicBool,
    requests: AtomicU64,
    admitted_jobs: AtomicU64,
    expired: AtomicU64,
    /// Jobs dropped because their connection died (distinct from
    /// deadline expiries).
    cancelled: AtomicU64,
}

/// The `gals-serve` server: a long-lived, multi-tenant front end over
/// the job scheduler and the sweep engine's sharded result cache.
///
/// Concurrency model: each client connection gets a reader thread that
/// parses request lines, expands them into jobs tagged with the
/// request id, and admits them — atomically per request — into the
/// single shared [`JobScheduler`]. Worker threads pull jobs in
/// priority/aging order regardless of which connection admitted them
/// and stream `partial` / `expired` frames back per job; the last job
/// of a request emits its `done` frame. Duplicate configurations are
/// simulated once (in-flight dedupe plus the shared cache) — and
/// because the simulator is deterministic, a result served through the
/// server is bit-identical to the same configuration run directly
/// through [`gals_explore::Explorer`], regardless of scheduling order.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("default_window", &self.default_window)
            .field("queued", &self.sched.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds, starts the worker pool, and serves in background threads.
    ///
    /// # Errors
    ///
    /// Propagates bind / cache-open I/O errors.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let cache = match &cfg.cache_path {
            Some(path) => ResultCache::open(path)?,
            None => ResultCache::in_memory(),
        };
        let mut engine = SweepEngine::new(cache);
        if cfg.workers > 0 {
            engine = engine.with_threads(cfg.workers);
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            engine,
            sched: JobScheduler::with_aging_step(cfg.aging_step),
            default_window: cfg.default_window.max(1),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            admitted_jobs: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        });
        let worker_handles = (0..inner.engine.threads())
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || inner.engine.serve_jobs(&inner.sched))
            })
            .collect();
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let inner = inner.clone();
            let conn_handles = conn_handles.clone();
            std::thread::spawn(move || accept_loop(&listener, &inner, &conn_handles))
        };
        Ok(Server {
            addr,
            inner,
            accept_handle: Some(accept_handle),
            worker_handles,
            conn_handles,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Simulations executed so far (excludes cache hits).
    pub fn simulated_count(&self) -> u64 {
        self.inner.engine.simulated_count()
    }

    /// Jobs that expired at their deadlines so far (jobs dropped for a
    /// dead connection count separately, in the `cancelled` status
    /// counter).
    pub fn expired_count(&self) -> u64 {
        self.inner.expired.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stops accepting connections and admitting
    /// requests, then **drains-or-expires** the queue — every admitted
    /// job still completes (or expires at its deadline) and every
    /// frame, including each request's `done`, is flushed to its
    /// client *before* any connection closes — persists the cache, and
    /// joins every server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Connection readers poll the flag and exit; join them so no
        // request can be admitted after the scheduler closes (a reader
        // mid-request either finishes admitting before it exits or
        // never admits — requests are admitted atomically).
        let handles = std::mem::take(
            &mut *self
                .conn_handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
        // Close the queue and let the workers drain it: every admitted
        // job's frame — and every request's done frame — is written
        // before the workers exit. Connections close only after that
        // (each socket's last writer handle lives in its requests'
        // states, which the completions drop), so a shutting-down
        // server can never swallow results it already owes a client.
        self.inner.sched.close();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let _ = self.inner.engine.save_cache();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    inner: &Arc<Inner>,
    conn_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let inner = inner.clone();
        let handle = std::thread::spawn(move || connection_loop(stream, &inner));
        let mut handles = conn_handles.lock().unwrap_or_else(PoisonError::into_inner);
        // Reap readers whose clients hung up, so a long-lived server
        // under connection churn doesn't accumulate handles forever.
        handles.retain(|h: &JoinHandle<()>| !h.is_finished());
        handles.push(handle);
    }
}

/// Writes one line from the connection's own thread (parse errors,
/// status responses); job completions go through
/// [`RequestState::write_frame`] instead, which tracks dead peers.
fn write_line(writer: &Arc<Mutex<TcpStream>>, line: &str) {
    let mut guard = writer.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = guard.write_all(line.as_bytes());
    let _ = guard.write_all(b"\n");
    let _ = guard.flush();
}

fn connection_loop(stream: TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Responses are single lines; send them immediately (Nagle would
    // stall the request/response round trip by tens of milliseconds).
    let _ = stream.set_nodelay(true);
    // Workers stream results through blocking writes: a client that
    // stops reading must not stall the worker pool behind its full
    // send buffer. On timeout the write fails and that client's stream
    // is the only casualty.
    let _ = stream.set_write_timeout(Some(WRITE_STALL_LIMIT));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let dead = Arc::new(AtomicBool::new(false));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => {
                // EOF. A partial line with no terminating newline is a
                // truncated request: tell the peer before hanging up (it
                // may only have shut down its write half).
                if !line.trim().is_empty() {
                    let resp = Response::Error {
                        id: String::new(),
                        message: "truncated request line".to_string(),
                    };
                    write_line(&writer, &resp.to_line());
                }
                return;
            }
            Ok(_) if line.ends_with('\n') => {
                if !line.trim().is_empty() {
                    handle_request(&line, inner, &writer, &dead);
                }
                line.clear();
            }
            // Mid-line read: keep accumulating.
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_request(
    line: &str,
    inner: &Arc<Inner>,
    writer: &Arc<Mutex<TcpStream>>,
    dead: &Arc<AtomicBool>,
) {
    inner.requests.fetch_add(1, Ordering::Relaxed);
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(message) => {
            write_line(
                writer,
                &Response::Error {
                    id: String::new(),
                    message,
                }
                .to_line(),
            );
            return;
        }
    };
    match expand(&req.kind, inner.default_window) {
        Ok(Expanded::Work { items, window }) => {
            admit(req, items, window, inner, writer, dead);
        }
        Ok(Expanded::Status) => {
            let engine = &inner.engine;
            let resp = Response::Status {
                id: req.id,
                counters: vec![
                    (
                        "requests".to_string(),
                        inner.requests.load(Ordering::Relaxed) as f64,
                    ),
                    (
                        "admitted_jobs".to_string(),
                        inner.admitted_jobs.load(Ordering::Relaxed) as f64,
                    ),
                    ("queued".to_string(), inner.sched.len() as f64),
                    (
                        "expired".to_string(),
                        inner.expired.load(Ordering::Relaxed) as f64,
                    ),
                    (
                        "cancelled".to_string(),
                        inner.cancelled.load(Ordering::Relaxed) as f64,
                    ),
                    ("simulated".to_string(), engine.simulated_count() as f64),
                    ("cache_hits".to_string(), engine.cache_hit_count() as f64),
                    ("cache_len".to_string(), engine.cache().len() as f64),
                    ("workers".to_string(), engine.threads() as f64),
                ],
            };
            write_line(writer, &resp.to_line());
        }
        Err(message) => {
            write_line(
                writer,
                &Response::Error {
                    id: req.id,
                    message,
                }
                .to_line(),
            );
        }
    }
}

/// Builds one request's jobs and admits them into the shared scheduler
/// as one atomic batch.
fn admit(
    req: Request,
    items: Vec<MeasureItem>,
    window: u64,
    inner: &Arc<Inner>,
    writer: &Arc<Mutex<TcpStream>>,
    dead: &Arc<AtomicBool>,
) {
    // checked_add: a huge client-supplied deadline_ms must not panic
    // the connection thread on targets with a narrow Instant; a
    // deadline too far away to represent is no deadline at all.
    let deadline = req
        .deadline_ms
        .and_then(|ms| Instant::now().checked_add(Duration::from_millis(ms)));
    let state = Arc::new(RequestState {
        id: req.id.clone(),
        writer: writer.clone(),
        remaining: AtomicUsize::new(items.len()),
        results: AtomicU64::new(0),
        expired: AtomicU64::new(0),
        dead: dead.clone(),
    });
    let n_jobs = items.len() as u64;
    let batch: Vec<(Job, Completion<'static>)> = items
        .into_iter()
        .map(|item| {
            let mut job = Job::new(item, window)
                .with_priority(req.priority)
                // The connection's dead flag doubles as the jobs'
                // cancellation token: once the client is gone, its
                // queued work expires instead of simulating.
                .with_cancel_flag(dead.clone())
                .with_tag(req.id.clone());
            if let Some(d) = deadline {
                job = job.with_deadline(d);
            }
            let state = state.clone();
            let inner = inner.clone();
            let complete = Box::new(move |job: Job, outcome: JobOutcome| {
                state.complete_one(&job.item.config_key, outcome, &inner);
            }) as Completion<'static>;
            (job, complete)
        })
        .collect();
    if inner.sched.submit_batch(batch) {
        inner.admitted_jobs.fetch_add(n_jobs, Ordering::Relaxed);
    } else {
        write_line(
            writer,
            &Response::Error {
                id: req.id,
                message: "server shutting down".to_string(),
            }
            .to_line(),
        );
    }
}

enum Expanded {
    Work {
        items: Vec<MeasureItem>,
        window: u64,
    },
    Status,
}

/// Expands a request into concrete measurable items (the same
/// (spec, mode, key, machine) tuples the `Explorer` sweeps build, so
/// cache entries are shared between the server and offline sweeps).
fn expand(kind: &RequestKind, default_window: u64) -> Result<Expanded, String> {
    let lookup =
        |name: &str| suite::by_name(name).ok_or_else(|| format!("unknown benchmark {name:?}"));
    let eff = |w: u64| if w == 0 { default_window } else { w };
    match kind {
        RequestKind::Status => Ok(Expanded::Status),
        RequestKind::RunConfig {
            bench,
            mode,
            cfg,
            policy,
            window,
        } => {
            let spec = lookup(bench)?;
            let item = match mode.as_str() {
                "sync" => {
                    let configs = SyncConfig::enumerate();
                    let c = *configs
                        .get(cfg.ok_or("missing cfg")?)
                        .ok_or_else(|| format!("sync cfg out of range (0..{})", configs.len()))?;
                    MeasureItem::sync(spec, c)
                }
                "prog" => {
                    let configs = McdConfig::enumerate();
                    let c = *configs
                        .get(cfg.ok_or("missing cfg")?)
                        .ok_or_else(|| format!("prog cfg out of range (0..{})", configs.len()))?;
                    MeasureItem::program(spec, c)
                }
                "phase" => MeasureItem::phase(spec, policy.unwrap_or_default()),
                other => return Err(format!("unknown mode {other:?}")),
            };
            Ok(Expanded::Work {
                items: vec![item],
                window: eff(*window),
            })
        }
        RequestKind::Sweep {
            bench,
            mode,
            window,
        } => {
            let spec = lookup(bench)?;
            let items = match mode.as_str() {
                "sync" => SyncConfig::enumerate()
                    .into_iter()
                    .map(|c| MeasureItem::sync(spec.clone(), c))
                    .collect(),
                "prog" => McdConfig::enumerate()
                    .into_iter()
                    .map(|c| MeasureItem::program(spec.clone(), c))
                    .collect(),
                other => return Err(format!("sweep mode must be sync or prog, got {other:?}")),
            };
            Ok(Expanded::Work {
                items,
                window: eff(*window),
            })
        }
        RequestKind::PolicyCompare {
            bench,
            policies,
            window,
        } => {
            let spec = lookup(bench)?;
            let items = policies
                .iter()
                .map(|&policy| MeasureItem::phase(spec.clone(), policy))
                .collect();
            Ok(Expanded::Work {
                items,
                window: eff(*window),
            })
        }
    }
}
