//! `gals-serve`: a concurrent, cache-backed experiment service over the
//! GALS-MCD job scheduler.
//!
//! The library-shaped [`Explorer`](gals_explore::Explorer) answers one
//! caller at a time; this crate turns the same machinery into a
//! long-lived multi-tenant process. Clients speak a line-delimited
//! flat-JSON protocol ([`protocol`]) over plain TCP (`std::net`, no
//! external dependencies): every request expands into typed
//! [`Job`](gals_explore::Job)s — `{machine config, window, priority,
//! deadline, request tag}` — admitted into one shared
//! [`JobScheduler`](gals_explore::JobScheduler). A worker pool over
//! the shared [`SweepEngine`](gals_explore::SweepEngine) drains the
//! queue in priority/aging order, serves repeats straight from the
//! sharded result cache (and deduplicates concurrent identical jobs in
//! flight), honors per-request deadlines with typed `expired` frames,
//! and streams each job's `partial` frame back the moment it resolves.
//!
//! Determinism invariant: the server builds exactly the same
//! `(benchmark, mode, config key, window)` work items as the offline
//! sweeps, so a result served over the wire is bit-identical to the
//! same configuration run directly through the `Explorer` — regardless
//! of scheduling order — and the two share cache entries.
//!
//! # Example
//!
//! ```no_run
//! use gals_serve::{Client, Priority, Request, RequestKind, ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let mut req = Request::new(
//!     "r1",
//!     RequestKind::RunConfig {
//!         bench: "gzip".into(),
//!         mode: "phase".into(),
//!         cfg: None,
//!         policy: None,
//!         window: 2_000,
//!     },
//! );
//! req.priority = Priority::High;
//! req.deadline_ms = Some(5_000);
//! let responses = client.request(&req)?;
//! println!("{responses:?}");
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
pub mod protocol;
#[cfg(target_os = "linux")]
mod reactor;
pub mod router;
mod server;
#[cfg(target_os = "linux")]
mod sys;

pub use client::Client;
pub use gals_explore::Priority;
pub use protocol::{Request, RequestKind, Response};
pub use router::{RoutedClient, ShardRouter, ShardedFleet};
pub use server::{ServeConfig, Server, Transport};
