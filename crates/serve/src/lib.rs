//! `gals-serve`: a concurrent, cache-backed experiment service over the
//! GALS-MCD sweep engine.
//!
//! The library-shaped [`Explorer`](gals_explore::Explorer) answers one
//! caller at a time; this crate turns the same machinery into a
//! long-lived multi-tenant process. Clients speak a line-delimited
//! flat-JSON protocol ([`protocol`]) over plain TCP (`std::net`, no
//! external dependencies): they submit configurations to measure, the
//! server batches compatible requests from *all* connected clients into
//! a single work-stealing sweep over the shared
//! [`SweepEngine`](gals_explore::SweepEngine), serves repeats straight
//! from the sharded result cache, and streams per-configuration results
//! back as they complete.
//!
//! Determinism invariant: the server builds exactly the same
//! `(benchmark, mode, config key, window)` work items as the offline
//! sweeps, so a result served over the wire is bit-identical to the
//! same configuration run directly through the `Explorer` — and the two
//! share cache entries.
//!
//! # Example
//!
//! ```no_run
//! use gals_serve::{Client, Request, RequestKind, ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let responses = client.request(&Request {
//!     id: "r1".into(),
//!     kind: RequestKind::RunConfig {
//!         bench: "gzip".into(),
//!         mode: "phase".into(),
//!         cfg: None,
//!         policy: None,
//!         window: 2_000,
//!     },
//! })?;
//! println!("{responses:?}");
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
pub mod protocol;
mod server;

pub use client::Client;
pub use protocol::{Request, RequestKind, Response};
pub use server::{ServeConfig, Server};
