//! The `gals-serve` server binary.
//!
//! Configuration via environment (flags would drag in an argument
//! parser; the service is config-light by design):
//!
//! * `GALS_SERVE_ADDR` — bind address (default `127.0.0.1:7411`).
//! * `GALS_SERVE_WORKERS` — sweep worker threads (default: all cores).
//! * `GALS_SERVE_WINDOW` — default instruction window for requests that
//!   omit one (default 10,000).
//! * `GALS_SERVE_CACHE` — result-cache file (default
//!   `target/gals-serve-cache.json`; set empty for in-memory only).
//! * `GALS_SERVE_AGING` — scheduler aging step in admissions per
//!   priority level (default 1024; see `gals_explore::JobScheduler`).

use gals_serve::{ServeConfig, Server};

fn main() -> std::io::Result<()> {
    let mut cfg = ServeConfig::from_env();
    if gals_common::env::var("GALS_SERVE_ADDR").is_none() {
        cfg.addr = "127.0.0.1:7411".to_string();
    }
    let server = Server::start(cfg)?;
    println!("gals-serve listening on {}", server.local_addr());
    // Serve until killed; the Drop impl persists the cache on the way
    // out of a clean signal-less exit path (tests use Server::shutdown).
    loop {
        std::thread::park();
    }
}
