//! A small blocking client for the `gals-serve` wire protocol, used by
//! the CLI, the benchmark harness, and the protocol tests.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{BoundedLineReader, LineRead, Request, Response, MAX_LINE_LEN};

/// A blocking connection to a `gals-serve` server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Reused across responses (no per-line `String` allocation) and
    /// length-bounded: a malformed giant line from a confused server
    /// errors out instead of growing memory without bound.
    lines: BoundedLineReader,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Line-sized messages: Nagle batching only adds latency here.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            lines: BoundedLineReader::new(),
        })
    }

    /// Sends one raw line (for malformed-input tests).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Sends a request without waiting for responses (pipelining).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        self.send_raw(&req.to_line())
    }

    /// Reads one response line.
    ///
    /// # Errors
    ///
    /// I/O errors, a closed connection, or an unparseable line.
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        match self.lines.read_line(&mut self.reader)? {
            LineRead::Eof => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            LineRead::TooLong => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response line exceeds {MAX_LINE_LEN} bytes"),
            )),
            LineRead::Line => Response::parse(&self.lines.line())
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
        }
    }

    /// Sends `req` and collects its full response stream: every
    /// `partial` and `expired` frame, terminated by the `done` /
    /// `status` / `error` frame (which is included as the last
    /// element).
    ///
    /// Responses for other pipelined request ids are *not* expected on
    /// this simple collector; it assumes one request in flight.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse errors.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Vec<Response>> {
        self.send(req)?;
        let mut out = Vec::new();
        loop {
            let resp = self.read_response()?;
            let terminal = resp.is_terminal();
            out.push(resp);
            if terminal {
                return Ok(out);
            }
        }
    }
}
