//! The epoll-backed serve reactor: one event-loop thread multiplexing
//! every client connection (Linux only; see [`crate::sys`] for the raw
//! bindings).
//!
//! Design, mio-style but hand-rolled:
//!
//! * **One thread, edge-triggered.** The reactor owns the listener,
//!   a wake eventfd, and every connection, all registered
//!   edge-triggered (`EPOLLET`). Each readiness edge is drained to
//!   `WouldBlock` before the next `epoll_wait`, the classic ET
//!   contract. Connections are keyed by a monotonically increasing
//!   token (never the fd), so a stale event for a closed-then-reused
//!   fd can't touch the wrong connection.
//! * **Line framing in place.** Inbound bytes accumulate per
//!   connection; complete lines are parsed and expanded exactly as the
//!   threads transport does (same [`crate::server::expand`] /
//!   [`crate::server::admit`] code paths, so served results stay
//!   bit-identical across transports). A line over
//!   [`MAX_LINE_LEN`](crate::protocol::MAX_LINE_LEN) earns an error
//!   frame and is discarded through its newline, never buffered.
//! * **Bounded outbound queues, vectored flushes.** Workers resolve
//!   jobs on their own threads and enqueue encoded frames into the
//!   owning connection's byte-bounded queue ([`ConnSink`]), then wake
//!   the reactor, which flushes with nonblocking vectored writes. A
//!   slow reader's queue hitting its bound kills *that* connection
//!   (its queued jobs cancel via the shared dead flag) and nobody
//!   else; a reader making no progress for
//!   [`WRITE_STALL_LIMIT`](crate::server::WRITE_STALL_LIMIT) dies the
//!   same way.
//! * **Fairness quotas = real backpressure.** Each connection may
//!   have at most `conn_inflight_limit` jobs admitted-but-unresolved;
//!   requests beyond that wait parsed-but-unadmitted, and the reactor
//!   stops *reading* that socket until completions free quota — the
//!   kernel buffer fills and the client blocks, while other
//!   connections' requests keep flowing into the shared scheduler
//!   (priority classes still order the queue itself).
//! * **Drains-or-expires shutdown.** On the shutdown flag the reactor
//!   stops parsing, fails still-queued requests with error frames,
//!   closes the scheduler (it is the sole admitter), and keeps
//!   flushing until every admitted job has resolved and every owed
//!   frame — including each request's `done` — reached its socket or
//!   that socket is provably dead.

use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use gals_common::fxmap::FxHashMap;

use crate::protocol::{Request, Response, MAX_LINE_LEN};
use crate::server::{
    admit, expand, status_response, Expanded, FrameSink, Inner, WRITE_STALL_LIMIT,
};
use crate::sys::{
    Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};

/// Token reserved for the listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token reserved for the wake eventfd.
const TOKEN_WAKE: u64 = u64::MAX - 1;
/// Bytes read from a socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;
/// At most this many frames per vectored write.
const WRITE_BATCH: usize = 32;
/// `epoll_wait` timeout while any connection has unflushed output
/// (drives the write-stall clock); otherwise the reactor sleeps until
/// an event or a wake.
const STALL_TICK_MS: i32 = 250;

/// Reactor tuning, from [`crate::ServeConfig`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReactorOptions {
    pub(crate) max_outbound_bytes: usize,
    pub(crate) conn_inflight_limit: usize,
}

/// Cross-thread reactor state: the wake fd workers signal after
/// queueing frames, and the global count of admitted-but-unresolved
/// jobs (the shutdown drain barrier).
#[derive(Debug)]
pub(crate) struct Shared {
    wake: WakeFd,
    outstanding: AtomicI64,
}

/// The running reactor, owned by the [`crate::Server`].
#[derive(Debug)]
pub(crate) struct ReactorHandle {
    shared: Arc<Shared>,
    join: Option<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Kicks the reactor out of `epoll_wait` (shutdown notification).
    pub(crate) fn wake(&self) {
        self.shared.wake.wake();
    }

    /// Joins the event-loop thread.
    pub(crate) fn join(&mut self) {
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }
}

/// Starts the reactor thread over an already-bound listener.
pub(crate) fn spawn(
    listener: TcpListener,
    inner: Arc<Inner>,
    opts: ReactorOptions,
) -> std::io::Result<ReactorHandle> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let wake = WakeFd::new()?;
    epoll.add(wake.raw(), EPOLLIN | EPOLLET, TOKEN_WAKE)?;
    epoll.add(listener.as_raw_fd(), EPOLLIN | EPOLLET, TOKEN_LISTENER)?;
    let shared = Arc::new(Shared {
        wake,
        outstanding: AtomicI64::new(0),
    });
    let thread_shared = shared.clone();
    let join = std::thread::spawn(move || {
        Reactor {
            epoll,
            listener: Some(listener),
            inner,
            shared: thread_shared,
            opts,
            conns: FxHashMap::default(),
            next_token: 0,
            closing: false,
        }
        .run();
    });
    Ok(ReactorHandle {
        shared,
        join: Some(join),
    })
}

/// One connection's bounded outbound queue of encoded frames.
struct Outbound {
    frames: VecDeque<Vec<u8>>,
    /// Bytes of `frames[0]` already written to the socket.
    head: usize,
    /// Total unwritten bytes across the queue (minus `head`).
    bytes: usize,
}

/// The reactor transport's [`FrameSink`]: workers push encoded frames
/// under a short lock and wake the reactor; the reactor flushes. The
/// byte bound is the slow-reader backstop — crossing it marks the
/// connection dead (which also cancels its queued jobs via the shared
/// flag) and drops everything queued.
struct ConnSink {
    outbound: Mutex<Outbound>,
    dead: Arc<AtomicBool>,
    limit: usize,
    shared: Arc<Shared>,
}

impl ConnSink {
    fn lock(&self) -> std::sync::MutexGuard<'_, Outbound> {
        self.outbound.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl FrameSink for ConnSink {
    fn send_frame(&self, line: &str) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        {
            let mut q = self.lock();
            if q.bytes + line.len() + 1 > self.limit {
                // Slow reader: bound the memory, kill the connection.
                self.dead.store(true, Ordering::Relaxed);
                q.frames.clear();
                q.head = 0;
                q.bytes = 0;
            } else {
                let mut frame = Vec::with_capacity(line.len() + 1);
                frame.extend_from_slice(line.as_bytes());
                frame.push(b'\n');
                q.bytes += frame.len();
                q.frames.push_back(frame);
            }
        }
        self.shared.wake.wake();
    }
}

/// Parsed work waiting for the connection's fairness quota.
struct PendingWork {
    req: Request,
    items: Vec<gals_explore::MeasureItem>,
    window: u64,
}

/// One multiplexed client connection.
struct Conn {
    stream: TcpStream,
    sink: Arc<ConnSink>,
    /// As `Arc<dyn FrameSink>` for the shared admission path (same
    /// allocation as `sink`).
    dyn_sink: Arc<dyn FrameSink>,
    dead: Arc<AtomicBool>,
    /// This connection's admitted-but-unresolved jobs (fairness
    /// quota); shared with the per-job resolution hook.
    inflight: Arc<AtomicI64>,
    /// Unparsed inbound bytes.
    buf: Vec<u8>,
    /// Inside an over-long line, dropping bytes until its newline.
    discarding: bool,
    /// The read edge is live: keep reading until `WouldBlock`.
    readable: bool,
    /// Peer closed its write half (EOF / RDHUP): serve what was
    /// admitted, flush, then close.
    read_closed: bool,
    /// Parsed requests waiting for quota, admitted FIFO.
    pending: VecDeque<PendingWork>,
    /// Last instant flushing made progress (or had nothing to do);
    /// the write-stall clock.
    last_progress: Instant,
    /// A flush hit `WouldBlock`: the socket buffer is full and only
    /// an `EPOLLOUT` edge (or stall expiry) moves it forward.
    write_blocked: bool,
}

impl Conn {
    /// True when every owed byte is out and no more can ever be owed.
    ///
    /// Order matters: `inflight` must be observed zero *before* the
    /// outbound queue is observed empty. A job's completion queues its
    /// frames first and decrements `inflight` last (release ordering),
    /// so inflight==0 (acquire) guarantees every owed frame is already
    /// in the queue the subsequent `bytes` read sees — the reverse
    /// order could close a connection between a completion's frame
    /// push and its counter decrement, swallowing the frame.
    fn drained(&self) -> bool {
        if !self.read_closed || !self.pending.is_empty() {
            return false;
        }
        if self.inflight.load(Ordering::Acquire) > 0 {
            return false;
        }
        self.sink.lock().bytes == 0
    }
}

/// The event loop state.
struct Reactor {
    epoll: Epoll,
    listener: Option<TcpListener>,
    inner: Arc<Inner>,
    shared: Arc<Shared>,
    opts: ReactorOptions,
    conns: FxHashMap<u64, Conn>,
    next_token: u64,
    /// Shutdown observed: listener dropped, scheduler closed, draining.
    closing: bool,
}

impl Reactor {
    fn run(mut self) {
        let mut events = vec![EpollEvent::zeroed(); 256];
        loop {
            // Tick while output is unflushed (stall clock) or we are
            // draining for shutdown; otherwise sleep for events.
            let timeout = if self.closing || self.any_unflushed() {
                STALL_TICK_MS
            } else {
                -1
            };
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                // epoll_wait failing outright is unrecoverable for the
                // event loop; shut the transport down.
                Err(_) => break,
            };
            for ev in &events[..n] {
                // Copy fields out of the (packed-on-x86) record.
                let (bits, token) = (ev.events, ev.data);
                match token {
                    TOKEN_WAKE => self.shared.wake.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    t => {
                        if let Some(conn) = self.conns.get_mut(&t) {
                            if bits & (EPOLLERR | EPOLLHUP) != 0 {
                                conn.dead.store(true, Ordering::Relaxed);
                            }
                            if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
                                conn.readable = true;
                            }
                            if bits & EPOLLOUT != 0 {
                                conn.write_blocked = false;
                            }
                        }
                    }
                }
            }
            if self.inner.shutdown.load(Ordering::SeqCst) && !self.closing {
                self.begin_close();
            }
            self.service_all();
            if self.closing
                && self.shared.outstanding.load(Ordering::Acquire) <= 0
                && self.conns.is_empty()
            {
                break;
            }
        }
    }

    fn any_unflushed(&self) -> bool {
        self.conns.values().any(|c| c.sink.lock().bytes > 0)
    }

    /// Shutdown transition: stop accepting and parsing, fail queued
    /// requests, close the scheduler (no other admitter exists), and
    /// switch to drain-and-flush mode.
    fn begin_close(&mut self) {
        self.closing = true;
        if let Some(listener) = self.listener.take() {
            self.epoll.del(listener.as_raw_fd());
        }
        for conn in self.conns.values_mut() {
            for work in conn.pending.drain(..) {
                let err = Response::Error {
                    id: work.req.id,
                    message: "server shutting down".to_string(),
                };
                conn.sink.send_frame(&err.to_line());
            }
            conn.read_closed = true;
            conn.buf.clear();
        }
        self.inner.sched.close();
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => self.register_conn(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                // Transient per-connection accept failures (e.g. the
                // peer reset before we got to it): keep accepting.
                Err(_) => continue,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Line-sized responses: send immediately, Nagle only adds
        // round-trip latency.
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let dead = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(ConnSink {
            outbound: Mutex::new(Outbound {
                frames: VecDeque::new(),
                head: 0,
                bytes: 0,
            }),
            dead: dead.clone(),
            limit: self.opts.max_outbound_bytes,
            shared: self.shared.clone(),
        });
        if self
            .epoll
            .add(
                stream.as_raw_fd(),
                EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                token,
            )
            .is_err()
        {
            return;
        }
        self.conns.insert(
            token,
            Conn {
                stream,
                dyn_sink: sink.clone(),
                sink,
                dead,
                inflight: Arc::new(AtomicI64::new(0)),
                buf: Vec::new(),
                discarding: false,
                readable: true,
                read_closed: false,
                pending: VecDeque::new(),
                last_progress: Instant::now(),
                write_blocked: false,
            },
        );
    }

    /// Runs every connection's read → admit → flush → lifecycle pass.
    /// A full scan per wake is deliberate: the map is at most a few
    /// hundred entries and the per-connection no-op path is a couple
    /// of atomic loads — far cheaper than tracking dirty sets would
    /// be worth at this scale.
    fn service_all(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let mut conn = match self.conns.remove(&token) {
                Some(c) => c,
                None => continue,
            };
            if !self.closing {
                self.pump_input(&mut conn);
            }
            self.drain_pending(&mut conn);
            flush(&mut conn);
            // Write-stall: no flush progress while bytes are owed for
            // too long means the peer stopped reading; abandon it.
            if conn.write_blocked
                && conn.sink.lock().bytes > 0
                && conn.last_progress.elapsed() >= WRITE_STALL_LIMIT
            {
                conn.dead.store(true, Ordering::Relaxed);
            }
            if conn.dead.load(Ordering::Relaxed) || conn.drained() {
                self.epoll.del(conn.stream.as_raw_fd());
                // Dropping the Conn closes the socket; its queued jobs
                // cancel through the shared dead flag (set here for
                // the drained case too — harmless, nothing is queued).
                conn.dead.store(true, Ordering::Relaxed);
            } else {
                self.conns.insert(token, conn);
            }
        }
    }

    /// Reads and parses as much as flow control allows: stops at
    /// `WouldBlock` (edge exhausted), EOF, a quota-blocked request
    /// (real backpressure: the socket goes unread), or connection
    /// death.
    fn pump_input(&mut self, conn: &mut Conn) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            self.extract_lines(conn);
            if !conn.pending.is_empty()
                || conn.read_closed
                || !conn.readable
                || conn.dead.load(Ordering::Relaxed)
            {
                return;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    self.extract_lines(conn);
                    // A partial line with no terminating newline is a
                    // truncated request: tell the peer before the
                    // connection winds down (it may only have shut
                    // down its write half).
                    if !conn.discarding && !conn.buf.iter().all(u8::is_ascii_whitespace) {
                        let resp = Response::Error {
                            id: String::new(),
                            message: "truncated request line".to_string(),
                        };
                        conn.sink.send_frame(&resp.to_line());
                    }
                    conn.buf.clear();
                    return;
                }
                Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conn.readable = false;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    /// Splits complete lines out of the inbound buffer and processes
    /// them; enforces the line-length bound with whole-line discard.
    fn extract_lines(&mut self, conn: &mut Conn) {
        loop {
            match conn.buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if conn.discarding {
                        conn.discarding = false;
                        conn.buf.drain(..=pos);
                        continue;
                    }
                    if pos > MAX_LINE_LEN {
                        // Over-long even though its newline already
                        // arrived: same whole-line rejection as the
                        // buffered (no-newline-yet) case below.
                        conn.buf.drain(..=pos);
                        let resp = Response::Error {
                            id: String::new(),
                            message: format!("request line exceeds {MAX_LINE_LEN} bytes"),
                        };
                        conn.sink.send_frame(&resp.to_line());
                        continue;
                    }
                    // Take the line without reallocating the tail more
                    // than once per line (tails are small: the peer's
                    // unread pipeline).
                    let line_bytes: Vec<u8> = conn.buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line_bytes[..pos]);
                    if !line.trim().is_empty() {
                        self.process_line(conn, &line);
                    }
                }
                None => {
                    if !conn.discarding && conn.buf.len() > MAX_LINE_LEN {
                        conn.discarding = true;
                        conn.buf.clear();
                        let resp = Response::Error {
                            id: String::new(),
                            message: format!("request line exceeds {MAX_LINE_LEN} bytes"),
                        };
                        conn.sink.send_frame(&resp.to_line());
                    }
                    return;
                }
            }
        }
    }

    /// Parses one request line and either answers it directly
    /// (status/errors) or queues its expanded work for admission.
    fn process_line(&mut self, conn: &mut Conn, line: &str) {
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        let req = match Request::parse(line) {
            Ok(req) => req,
            Err(message) => {
                let resp = Response::Error {
                    id: String::new(),
                    message,
                };
                conn.sink.send_frame(&resp.to_line());
                return;
            }
        };
        match expand(&req.kind, self.inner.default_window) {
            Ok(Expanded::Work { items, window }) => {
                conn.pending.push_back(PendingWork { req, items, window });
            }
            Ok(Expanded::Status) => {
                let resp = status_response(req.id, &self.inner);
                conn.sink.send_frame(&resp.to_line());
            }
            Err(message) => {
                let resp = Response::Error {
                    id: req.id,
                    message,
                };
                conn.sink.send_frame(&resp.to_line());
            }
        }
    }

    /// Admits queued requests FIFO while the connection's fairness
    /// quota allows. A request bigger than the whole quota admits when
    /// the connection is otherwise idle (the quota bounds concurrency,
    /// not request size), so oversized sweeps still make progress.
    fn drain_pending(&mut self, conn: &mut Conn) {
        if self.closing {
            return;
        }
        let limit = self.opts.conn_inflight_limit as i64;
        while let Some(front) = conn.pending.front() {
            let n = front.items.len() as i64;
            let inflight = conn.inflight.load(Ordering::Acquire);
            if inflight > 0 && inflight + n > limit {
                return;
            }
            let work = conn.pending.pop_front().expect("front checked above");
            // Account *before* admission: completions may fire on
            // worker threads before `admit` returns.
            conn.inflight.fetch_add(n, Ordering::AcqRel);
            self.shared.outstanding.fetch_add(n, Ordering::AcqRel);
            let resolved: Arc<dyn Fn() + Send + Sync> = {
                let shared = self.shared.clone();
                let inflight = conn.inflight.clone();
                Arc::new(move || {
                    inflight.fetch_sub(1, Ordering::AcqRel);
                    shared.outstanding.fetch_sub(1, Ordering::AcqRel);
                    shared.wake.wake();
                })
            };
            if !admit(
                work.req,
                work.items,
                work.window,
                &self.inner,
                &conn.dyn_sink,
                &conn.dead,
                Some(resolved),
            ) {
                conn.inflight.fetch_sub(n, Ordering::AcqRel);
                self.shared.outstanding.fetch_sub(n, Ordering::AcqRel);
            }
        }
    }
}

/// Flushes a connection's outbound queue with nonblocking vectored
/// writes until empty or `WouldBlock`.
fn flush(conn: &mut Conn) {
    if conn.dead.load(Ordering::Relaxed) || conn.write_blocked {
        return;
    }
    let sink = conn.sink.clone();
    let mut q = sink.lock();
    while !q.frames.is_empty() {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(WRITE_BATCH.min(q.frames.len()));
        for (i, frame) in q.frames.iter().take(WRITE_BATCH).enumerate() {
            let start = if i == 0 { q.head } else { 0 };
            slices.push(IoSlice::new(&frame[start..]));
        }
        match (&conn.stream).write_vectored(&slices) {
            Ok(0) => {
                conn.dead.store(true, Ordering::Relaxed);
                break;
            }
            Ok(mut n) => {
                conn.last_progress = Instant::now();
                q.bytes = q.bytes.saturating_sub(n);
                while n > 0 {
                    let rem = q.frames[0].len() - q.head;
                    if n >= rem {
                        n -= rem;
                        q.head = 0;
                        q.frames.pop_front();
                    } else {
                        q.head += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                conn.write_blocked = true;
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
    if q.frames.is_empty() {
        // Nothing owed: the stall clock measures owed-but-stuck time.
        conn.last_progress = Instant::now();
    }
}
