//! Consistent-hash sharding of the serve fleet by benchmark.
//!
//! Trace-pool and result-cache residency is the serving layer's
//! dominant locality lever (the same cache-residency discipline the
//! simulator's packed tag arrays exploit): a shard that has already
//! captured a benchmark's instruction recording answers further work
//! on that benchmark from warm state. The [`ShardRouter`] therefore
//! keys placement on the *benchmark name* — every request for a given
//! benchmark, whatever its mode, window, or policy, lands on the same
//! shard, so per-shard trace pools partition the suite instead of
//! replicating it.
//!
//! The hash ring is the classic consistent-hash construction with
//! virtual nodes: each shard owns [`VNODES_PER_SHARD`] points placed
//! by [`fnv1a64`] (hand-rolled, dependency-free, and — critically —
//! deterministic across processes and runs, unlike `DefaultHasher`'s
//! random SipHash keys), and a benchmark routes to the first point at
//! or after its own hash. Adding or removing one shard therefore
//! remaps only ~1/N of the benchmarks; every other shard's pool
//! residency survives a fleet resize.
//!
//! Because the simulator is deterministic and shards share nothing,
//! results served through a fleet are bit-identical to single-server
//! (and direct) execution — the router changes *where* a benchmark's
//! work runs, never *what* it computes. [`ShardedFleet`] runs N
//! in-process shard servers for tests and benchmarks; production
//! deployments run one `gals_serve` process per shard and any client
//! that embeds a [`ShardRouter`] over the same shard count routes
//! identically.

use std::net::SocketAddr;

use crate::client::Client;
use crate::protocol::{Request, RequestKind, Response};
use crate::server::{ServeConfig, Server};

/// Virtual nodes per shard on the hash ring. 64 keeps the placement
/// spread tight (the suite's ~10 benchmarks land on every shard for
/// small N with high probability) while the ring stays a trivially
/// searchable few hundred entries.
pub const VNODES_PER_SHARD: usize = 64;

/// 64-bit FNV-1a. Deterministic across processes, runs, and builds —
/// the property the ring needs so that independently constructed
/// routers (server side, client side, next week's process) agree on
/// every placement.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A consistent-hash ring mapping benchmark names to shard indices.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// `(point, shard)` sorted by point; ties (astronomically
    /// unlikely) break by shard index, keeping construction
    /// deterministic regardless of insertion order.
    ring: Vec<(u64, usize)>,
    shards: usize,
}

impl ShardRouter {
    /// Builds the ring for `shards` shards (at least 1).
    pub fn new(shards: usize) -> ShardRouter {
        let shards = shards.max(1);
        let mut ring = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                let point = fnv1a64(format!("shard{shard}/vnode{vnode}").as_bytes());
                ring.push((point, shard));
            }
        }
        ring.sort_unstable();
        ShardRouter { ring, shards }
    }

    /// Number of shards the ring covers.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `bench`: the first ring point at or after the
    /// benchmark's hash, wrapping at the top of the ring.
    pub fn route(&self, bench: &str) -> usize {
        let h = fnv1a64(bench.as_bytes());
        let idx = match self.ring.binary_search(&(h, 0)) {
            Ok(i) | Err(i) => i,
        };
        self.ring[idx % self.ring.len()].1
    }

    /// The shard for a request: by benchmark for work requests, `None`
    /// for `status` (which is per-shard state; callers pick a shard —
    /// [`RoutedClient`] uses shard 0).
    pub fn route_kind(&self, kind: &RequestKind) -> Option<usize> {
        match kind {
            RequestKind::RunConfig { bench, .. }
            | RequestKind::Sweep { bench, .. }
            | RequestKind::PolicyCompare { bench, .. } => Some(self.route(bench)),
            RequestKind::Status => None,
        }
    }
}

/// N in-process shard [`Server`]s behind one [`ShardRouter`] (the
/// test/bench harness shape of the production one-process-per-shard
/// deployment).
#[derive(Debug)]
pub struct ShardedFleet {
    shards: Vec<Server>,
    router: ShardRouter,
}

impl ShardedFleet {
    /// Starts `n` shard servers from `base` (each on its own ephemeral
    /// port; a configured cache path gets a per-shard suffix so shards
    /// share nothing on disk either).
    ///
    /// # Errors
    ///
    /// Propagates any shard's startup failure (already-started shards
    /// shut down cleanly on drop).
    pub fn start(base: &ServeConfig, n: usize) -> std::io::Result<ShardedFleet> {
        let n = n.max(1);
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let mut cfg = base.clone();
            cfg.addr = "127.0.0.1:0".to_string();
            cfg.cache_path = base.cache_path.as_ref().map(|p| format!("{p}.shard{i}"));
            shards.push(Server::start(cfg)?);
        }
        Ok(ShardedFleet {
            shards,
            router: ShardRouter::new(n),
        })
    }

    /// The fleet's router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Shard `i`'s server (counters, trace-pool introspection).
    pub fn shard(&self, i: usize) -> &Server {
        &self.shards[i]
    }

    /// Every shard's bound address, indexed by shard.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.shards.iter().map(Server::local_addr).collect()
    }

    /// Gracefully shuts down every shard (drains-or-expires each).
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.shutdown();
        }
    }
}

/// A client over a sharded fleet: one connection per shard, each
/// request routed by its benchmark.
#[derive(Debug)]
pub struct RoutedClient {
    router: ShardRouter,
    conns: Vec<Client>,
}

impl RoutedClient {
    /// Connects to every shard (`addrs` indexed by shard, as returned
    /// by [`ShardedFleet::addrs`]).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addrs: &[SocketAddr]) -> std::io::Result<RoutedClient> {
        let mut conns = Vec::with_capacity(addrs.len());
        for addr in addrs {
            conns.push(Client::connect(addr)?);
        }
        Ok(RoutedClient {
            router: ShardRouter::new(addrs.len()),
            conns,
        })
    }

    /// The shard `req` routes to (`status` pins to shard 0).
    pub fn route(&self, req: &Request) -> usize {
        self.router.route_kind(&req.kind).unwrap_or(0)
    }

    /// Sends `req` to its shard and collects the full response stream
    /// (see [`Client::request`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse errors.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Vec<Response>> {
        let shard = self.route(req);
        self.conns[shard].request(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in 1..=8 {
            let a = ShardRouter::new(shards);
            let b = ShardRouter::new(shards);
            for bench in gals_workloads::suite::names() {
                let s = a.route(&bench);
                assert_eq!(s, b.route(&bench), "{bench} under {shards} shards");
                assert!(s < shards);
            }
        }
    }

    #[test]
    fn resizing_remaps_only_a_fraction() {
        // Consistent hashing's point: going from N to N+1 shards must
        // keep most benchmarks where they were.
        let before = ShardRouter::new(3);
        let after = ShardRouter::new(4);
        let names = gals_workloads::suite::names();
        let moved = names
            .iter()
            .filter(|b| {
                let s = after.route(b);
                s != before.route(b) && s != 3
            })
            .count();
        assert_eq!(
            moved, 0,
            "benchmarks moved between surviving shards on resize"
        );
    }

    #[test]
    fn status_routes_nowhere() {
        let router = ShardRouter::new(4);
        assert_eq!(router.route_kind(&RequestKind::Status), None);
        assert!(router
            .route_kind(&RequestKind::Sweep {
                bench: "gzip".into(),
                mode: "prog".into(),
                window: 0,
            })
            .is_some());
    }
}
