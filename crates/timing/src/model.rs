//! The analytical timing model and its calibrated constants.

use gals_common::Hertz;

use crate::cache::{Dl2Config, ICacheConfig, SyncICacheOption, Variant};
use crate::queue::IqSize;

/// A single cache design point with its modeled timing, as reported in
/// Tables 1–3 and plotted in Figures 2–3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachePoint {
    /// Total capacity in KB.
    pub size_kb: u32,
    /// Associativity.
    pub assoc: u32,
    /// Sub-banks per way chosen by the model (CACTI analogue).
    pub sub_banks: u32,
    /// End-to-end access time in picoseconds.
    pub access_ps: f64,
    /// Domain frequency implied by a 2-cycle pipelined access.
    pub frequency: Hertz,
}

/// Analytical stand-in for CACTI 3.1 (caches) and Palacharla et al.
/// (issue queues), calibrated to the paper's published anchor points.
///
/// The model is deliberately simple: every delay is the sum of an array
/// term (grows with way capacity), a way-select term (appears for
/// associativities above one, with different constants for run-time
/// resizable vs fixed-optimal designs), and a replication-wiring term
/// (grows with way count). Frequencies assume the L1 access is pipelined
/// over two cycles (Table 5) plus a fixed latch/skew overhead per stage.
///
/// All constants are in picoseconds.
///
/// # Example
///
/// ```
/// use gals_timing::{TimingModel, Dl2Config, Variant};
///
/// let m = TimingModel::default();
/// let base = m.dl2_frequency(Dl2Config::K32W1, Variant::Adaptive);
/// let big = m.dl2_frequency(Dl2Config::K256W8, Variant::Adaptive);
/// assert!(base > big, "upsizing lowers the domain frequency");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    /// Array-delay intercept (decoder + sense + output drive).
    array_base_ps: f64,
    /// Array-delay growth at the 64 KB reference way; scales as
    /// `(way_kb/64)^ARRAY_EXP`. Banking absorbs size growth almost
    /// completely for small ways (Figures 2–3 are nearly flat through
    /// 32 KB), then wire delay takes over steeply toward 64 KB.
    array_growth_ps: f64,
    /// Way-select insertion delay for a run-time resizable design.
    adapt_mux_ps: f64,
    /// Per-doubling way-select growth for a resizable design.
    adapt_sel_ps: f64,
    /// Replication wiring per extra way for a resizable design.
    adapt_rep_ps: f64,
    /// Way-select insertion delay for a fixed-optimal design.
    opt_mux_ps: f64,
    /// Per-doubling way-select growth for a fixed-optimal design.
    opt_sel_ps: f64,
    /// Replication wiring per extra way for a fixed-optimal design.
    opt_rep_ps: f64,
    /// Latch + skew overhead per pipeline stage.
    latch_ps: f64,
    /// Issue-queue wakeup intercept.
    iq_wakeup_base_ps: f64,
    /// Issue-queue wakeup slope per entry (tag broadcast wire).
    iq_wakeup_slope_ps: f64,
    /// Selection-tree delay per log₄ level.
    iq_select_level_ps: f64,
    /// Issue-queue cycle overhead (latch + skew).
    iq_overhead_ps: f64,
    /// Upper bound on any domain frequency from non-modeled paths
    /// (register file, ALU loops, rename).
    domain_cap: Hertz,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            array_base_ps: 1158.0,
            array_growth_ps: 245.0,
            adapt_mux_ps: 450.0,
            adapt_sel_ps: 80.0,
            adapt_rep_ps: 20.0,
            opt_mux_ps: 390.0,
            opt_sel_ps: 72.0,
            opt_rep_ps: 16.0,
            latch_ps: 50.0,
            iq_wakeup_base_ps: 79.0,
            iq_wakeup_slope_ps: 2.44,
            iq_select_level_ps: 255.0,
            iq_overhead_ps: 30.0,
            domain_cap: Hertz::from_mhz(1600),
        }
    }
}

impl TimingModel {
    /// Creates the default calibrated model.
    pub fn new() -> Self {
        TimingModel::default()
    }

    /// Maximum frequency any domain may reach regardless of structure
    /// sizing (non-modeled critical paths).
    pub fn domain_cap(&self) -> Hertz {
        self.domain_cap
    }

    // ------------------------------------------------------------------
    // Raw delay terms
    // ------------------------------------------------------------------

    /// Exponent of the array-growth curve (fitted to the published
    /// frequency points: flat through 32 KB ways, −21% period at 64 KB).
    const ARRAY_EXP: f64 = 4.9;

    /// Delay of a single way's data array, in ps.
    fn way_array_ps(&self, way_kb: f64) -> f64 {
        self.array_base_ps + self.array_growth_ps * (way_kb / 64.0).powf(Self::ARRAY_EXP)
    }

    /// Way-select + replication overhead for an `assoc`-way structure.
    fn select_ps(&self, assoc: f64, variant: Variant) -> f64 {
        if assoc <= 1.0 {
            return 0.0;
        }
        let (mux, sel, rep) = match variant {
            Variant::Adaptive => (self.adapt_mux_ps, self.adapt_sel_ps, self.adapt_rep_ps),
            Variant::Optimal => (self.opt_mux_ps, self.opt_sel_ps, self.opt_rep_ps),
        };
        mux + sel * assoc.log2() + rep * (assoc - 1.0)
    }

    /// End-to-end access time for a cache built from `assoc` ways of
    /// `way_kb` KB each.
    pub fn cache_access_ps(&self, way_kb: u32, assoc: u32, variant: Variant) -> f64 {
        self.way_array_ps(way_kb as f64) + self.select_ps(assoc as f64, variant)
    }

    /// Converts a 2-cycle pipelined access time into a domain frequency,
    /// applying the domain cap and rounding to MHz.
    fn cache_frequency(&self, access_ps: f64) -> Hertz {
        let cycle_ps = access_ps / 2.0 + self.latch_ps;
        let mhz = (1e6 / cycle_ps).round() as u64;
        Hertz::from_mhz(mhz).min(self.domain_cap)
    }

    // ------------------------------------------------------------------
    // Load/store domain (L1-D + L2 pair, Table 1 / Figure 2)
    // ------------------------------------------------------------------

    /// Load/store domain frequency for a joint D/L2 configuration.
    ///
    /// The clock is set by the L1-D way structure: the L2, although far
    /// larger, is pipelined over 12 cycles (Table 5) and never constrains
    /// the cycle time in this model.
    pub fn dl2_frequency(&self, cfg: Dl2Config, variant: Variant) -> Hertz {
        self.cache_frequency(self.cache_access_ps(32, cfg.ways(), variant))
    }

    /// Full design point for the L1-D cache of a D/L2 configuration
    /// (Table 1 row, left half).
    pub fn dl2_l1_point(&self, cfg: Dl2Config, variant: Variant) -> CachePoint {
        let access_ps = self.cache_access_ps(32, cfg.ways(), variant);
        CachePoint {
            size_kb: cfg.l1_kb(),
            assoc: cfg.ways(),
            sub_banks: self.sub_banks(32, cfg.ways(), variant, 32),
            access_ps,
            frequency: self.cache_frequency(access_ps),
        }
    }

    /// Full design point for the L2 cache of a D/L2 configuration
    /// (Table 1 row, right half).
    pub fn dl2_l2_point(&self, cfg: Dl2Config, variant: Variant) -> CachePoint {
        // The L2 way is a 256 KB RAM; its access is multi-cycle and does
        // not set the clock, but its geometry is still reported.
        let access_ps = self.way_array_ps(256.0) + self.select_ps(cfg.ways() as f64, variant);
        CachePoint {
            size_kb: cfg.l2_kb(),
            assoc: cfg.ways(),
            sub_banks: self.sub_banks(256, cfg.ways(), variant, 8),
            access_ps,
            frequency: self.dl2_frequency(cfg, variant),
        }
    }

    // ------------------------------------------------------------------
    // Front-end domain (I-cache, Tables 2-3 / Figure 3)
    // ------------------------------------------------------------------

    /// Front-end domain frequency for an adaptive I-cache configuration
    /// (each way is a 16 KB RAM replicated from the base configuration).
    pub fn icache_frequency(&self, cfg: ICacheConfig) -> Hertz {
        self.cache_frequency(self.cache_access_ps(16, cfg.ways(), Variant::Adaptive))
    }

    /// Design point for an adaptive I-cache configuration (Table 2).
    pub fn icache_point(&self, cfg: ICacheConfig) -> CachePoint {
        let access_ps = self.cache_access_ps(16, cfg.ways(), Variant::Adaptive);
        CachePoint {
            size_kb: cfg.kb(),
            assoc: cfg.ways(),
            sub_banks: self.sub_banks(16, cfg.ways(), Variant::Adaptive, 32),
            access_ps,
            frequency: self.icache_frequency(cfg),
        }
    }

    /// Front-end frequency for one of the sixteen fixed synchronous
    /// I-cache options (Table 3).
    pub fn sync_icache_frequency(&self, opt: SyncICacheOption) -> Hertz {
        let access = self.cache_access_ps(opt.way_kb(), opt.assoc(), Variant::Optimal);
        self.cache_frequency(access)
    }

    /// Design point for a Table 3 synchronous I-cache option.
    pub fn sync_icache_point(&self, opt: SyncICacheOption) -> CachePoint {
        let access_ps = self.cache_access_ps(opt.way_kb(), opt.assoc(), Variant::Optimal);
        CachePoint {
            size_kb: opt.size_kb(),
            assoc: opt.assoc(),
            sub_banks: self.sub_banks(opt.way_kb(), opt.assoc(), Variant::Optimal, 32),
            access_ps,
            frequency: self.sync_icache_frequency(opt),
        }
    }

    /// Frequency of the *best* (fastest) fixed I-cache of a given total
    /// capacity, for the "Optimal" curve of Figure 3. For instruction
    /// streams the best fixed design at every capacity is direct-mapped
    /// (§2.2), which this model reproduces.
    pub fn best_fixed_icache_frequency(&self, size_kb: u32) -> Hertz {
        SyncICacheOption::all()
            .iter()
            .filter(|o| o.size_kb() == size_kb)
            .map(|&o| self.sync_icache_frequency(o))
            .max()
            .expect("no Table 3 option with that capacity")
    }

    // ------------------------------------------------------------------
    // Integer / floating-point domains (issue queues, Figure 4)
    // ------------------------------------------------------------------

    /// Wakeup + selection delay of an issue queue with `entries` entries,
    /// in picoseconds (Palacharla-style: selection dominates and is
    /// organized as a log₄ tree — 2 levels up to 16 entries, 3 levels from
    /// 17 to 64).
    pub fn iq_access_ps(&self, entries: u32) -> f64 {
        assert!(entries > 0, "queue must have at least one entry");
        let levels = (entries as f64).log(4.0).ceil().max(1.0);
        self.iq_wakeup_base_ps
            + self.iq_wakeup_slope_ps * entries as f64
            + self.iq_select_level_ps * levels
    }

    /// Execution-domain frequency for an issue queue with `entries`
    /// entries (wakeup + select must complete in a single cycle).
    pub fn iq_frequency_at(&self, entries: u32) -> Hertz {
        let cycle_ps = self.iq_access_ps(entries) + self.iq_overhead_ps;
        let mhz = (1e6 / cycle_ps).round() as u64;
        Hertz::from_mhz(mhz).min(self.domain_cap)
    }

    /// Execution-domain frequency for one of the four supported queue
    /// sizes.
    pub fn iq_frequency(&self, size: IqSize) -> Hertz {
        self.iq_frequency_at(size.entries())
    }

    // ------------------------------------------------------------------
    // Sub-bank reporting (Table 1 analogue)
    // ------------------------------------------------------------------

    /// Sub-banks per way reported for a design point.
    ///
    /// Adaptive designs inherit the base configuration's banking
    /// (`base_banks`: 32 for the L1 caches, 8 for the L2 — §2.1). Optimal
    /// designs re-balance: the model halves the per-way bank count for
    /// each way added (routing overhead between ways substitutes for
    /// intra-way banking), with a floor of 4, mirroring CACTI's tendency
    /// to choose coarser banking for wider structures.
    pub fn sub_banks(&self, _way_kb: u32, assoc: u32, variant: Variant, base_banks: u32) -> u32 {
        match variant {
            Variant::Adaptive => base_banks,
            Variant::Optimal => {
                if assoc <= 1 {
                    base_banks
                } else {
                    (base_banks / assoc).max(4)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> TimingModel {
        TimingModel::default()
    }

    #[test]
    fn anchor_icache_dm_to_2way_drop_is_31pct() {
        let dm = m().icache_frequency(ICacheConfig::K16W1).as_ghz();
        let w2 = m().icache_frequency(ICacheConfig::K32W2).as_ghz();
        let drop = 1.0 - w2 / dm;
        assert!(
            (0.28..=0.34).contains(&drop),
            "expected ≈31% drop, got {:.1}% ({dm} -> {w2})",
            drop * 100.0
        );
    }

    #[test]
    fn anchor_optimal_64k_dm_27pct_faster_than_adaptive_64k() {
        let opt = m()
            .sync_icache_frequency(SyncICacheOption::paper_best())
            .as_ghz();
        let adapt = m().icache_frequency(ICacheConfig::K64W4).as_ghz();
        let adv = opt / adapt - 1.0;
        assert!(
            (0.22..=0.32).contains(&adv),
            "expected ≈27% advantage, got {:.1}%",
            adv * 100.0
        );
    }

    #[test]
    fn anchor_dl2_optimal_about_5pct_faster() {
        let model = m();
        let mut gaps = Vec::new();
        for cfg in [Dl2Config::K64W2, Dl2Config::K128W4, Dl2Config::K256W8] {
            let a = model.dl2_frequency(cfg, Variant::Adaptive).as_ghz();
            let o = model.dl2_frequency(cfg, Variant::Optimal).as_ghz();
            assert!(o >= a, "optimal must not be slower ({cfg})");
            gaps.push(o / a - 1.0);
        }
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (0.02..=0.09).contains(&mean_gap),
            "expected ≈5% mean gap, got {:.1}%",
            mean_gap * 100.0
        );
    }

    #[test]
    fn base_configs_have_equal_adaptive_and_optimal_frequency() {
        // §2: at the smallest sizing the adaptive structure *is* the
        // optimal structure.
        let model = m();
        assert_eq!(
            model.dl2_frequency(Dl2Config::K32W1, Variant::Adaptive),
            model.dl2_frequency(Dl2Config::K32W1, Variant::Optimal)
        );
        assert_eq!(
            model.icache_frequency(ICacheConfig::K16W1),
            model.sync_icache_frequency(SyncICacheOption::new(16, 1).unwrap())
        );
    }

    #[test]
    fn frequencies_monotonically_decrease_with_upsizing() {
        let model = m();
        for v in [Variant::Adaptive, Variant::Optimal] {
            let fs: Vec<_> = Dl2Config::ALL
                .iter()
                .map(|&c| model.dl2_frequency(c, v))
                .collect();
            assert!(fs.windows(2).all(|w| w[0] > w[1]), "{v:?}: {fs:?}");
        }
        let fi: Vec<_> = ICacheConfig::ALL
            .iter()
            .map(|&c| model.icache_frequency(c))
            .collect();
        assert!(fi.windows(2).all(|w| w[0] > w[1]), "{fi:?}");
    }

    #[test]
    fn iq_frequency_cliff_at_16_entries() {
        let model = m();
        let f16 = model.iq_frequency(IqSize::Q16).as_ghz();
        let f20 = model.iq_frequency_at(20).as_ghz();
        let f32 = model.iq_frequency(IqSize::Q32).as_ghz();
        let f64_ = model.iq_frequency(IqSize::Q64).as_ghz();
        // Big cliff 16 -> 20 (selection tree gains a level)...
        assert!(f16 / f20 > 1.25, "{f16} vs {f20}");
        // ...then a shallow slope 32 -> 64.
        assert!(f32 / f64_ < 1.12, "{f32} vs {f64_}");
        assert!(f32 > f64_);
    }

    #[test]
    fn iq_16_is_fastest_supported_size() {
        let model = m();
        let fs: Vec<_> = IqSize::ALL.iter().map(|&s| model.iq_frequency(s)).collect();
        assert!(fs.windows(2).all(|w| w[0] > w[1]), "{fs:?}");
    }

    #[test]
    fn best_fixed_icache_is_direct_mapped() {
        let model = m();
        for size in [16, 32, 64] {
            let best = model.best_fixed_icache_frequency(size);
            let dm = model.sync_icache_frequency(SyncICacheOption::new(size, 1).unwrap());
            assert_eq!(
                best, dm,
                "DM should be the fastest fixed design at {size} KB"
            );
        }
    }

    #[test]
    fn sub_banks_follow_replication_rule() {
        let model = m();
        // Adaptive: base banking replicated per way.
        assert_eq!(model.sub_banks(32, 8, Variant::Adaptive, 32), 32);
        assert_eq!(model.sub_banks(256, 4, Variant::Adaptive, 8), 8);
        // Optimal: re-balanced, floor of 4.
        assert_eq!(model.sub_banks(32, 1, Variant::Optimal, 32), 32);
        assert!(model.sub_banks(32, 8, Variant::Optimal, 32) >= 4);
        assert_eq!(model.sub_banks(256, 2, Variant::Optimal, 8), 4);
    }

    #[test]
    fn domain_cap_clamps() {
        let model = m();
        // A hypothetical tiny structure would exceed the cap; the cap wins.
        assert!(model.cache_frequency(100.0) <= model.domain_cap());
    }

    #[test]
    fn points_are_consistent() {
        let model = m();
        let p = model.icache_point(ICacheConfig::K32W2);
        assert_eq!(p.size_kb, 32);
        assert_eq!(p.assoc, 2);
        assert_eq!(p.frequency, model.icache_frequency(ICacheConfig::K32W2));
        let q = model.dl2_l1_point(Dl2Config::K128W4, Variant::Optimal);
        assert_eq!(q.size_kb, 128);
        assert_eq!(q.assoc, 4);
    }
}
