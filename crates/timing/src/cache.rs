//! Cache configuration vocabulary: the adaptive configuration points of
//! Tables 1 and 2 and the fully-synchronous design options of Table 3.

use std::fmt;

/// Whether a structure is built for adaptivity (ways replicated from the
/// base configuration, resizable at run time) or optimized as a fixed
/// design (CACTI free to re-balance sub-banking for each geometry).
///
/// §2: "to support resizing, the smallest structure size must be a
/// substructure of the larger sizings. Thus, structures may be suboptimal in
/// their large configurations."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Run-time resizable structure (adaptive MCD).
    Adaptive,
    /// Fixed structure optimized for exactly this geometry (synchronous).
    Optimal,
}

/// Joint L1-data / L2 cache configuration (Table 1).
///
/// The two caches resize together by ways: the base is a 32 KB
/// direct-mapped L1-D with a 256 KB direct-mapped L2; each step doubles the
/// associativity (and hence capacity) of both. Associativities 3, 5, 6 and
/// 7 are skipped "to limit the state space" (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dl2Config {
    /// 32 KB / 1-way L1-D with 256 KB / 1-way L2 (base: smallest, fastest).
    K32W1,
    /// 64 KB / 2-way L1-D with 512 KB / 2-way L2.
    K64W2,
    /// 128 KB / 4-way L1-D with 1 MB / 4-way L2.
    K128W4,
    /// 256 KB / 8-way L1-D with 2 MB / 8-way L2.
    K256W8,
}

impl Dl2Config {
    /// All four configurations, smallest/fastest first.
    pub const ALL: [Dl2Config; 4] = [
        Dl2Config::K32W1,
        Dl2Config::K64W2,
        Dl2Config::K128W4,
        Dl2Config::K256W8,
    ];

    /// Dense index in `0..4` (also the number of doublings from the base).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Dl2Config::K32W1 => 0,
            Dl2Config::K64W2 => 1,
            Dl2Config::K128W4 => 2,
            Dl2Config::K256W8 => 3,
        }
    }

    /// Constructs from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        Dl2Config::ALL[idx]
    }

    /// Number of active ways (1, 2, 4, 8) in both L1-D and L2.
    #[inline]
    pub const fn ways(self) -> u32 {
        match self {
            Dl2Config::K32W1 => 1,
            Dl2Config::K64W2 => 2,
            Dl2Config::K128W4 => 4,
            Dl2Config::K256W8 => 8,
        }
    }

    /// Active L1-D capacity in KB (each way is a 32 KB RAM).
    #[inline]
    pub const fn l1_kb(self) -> u32 {
        32 * self.ways()
    }

    /// Active L2 capacity in KB (each way is a 256 KB RAM).
    #[inline]
    pub const fn l2_kb(self) -> u32 {
        256 * self.ways()
    }

    /// The configuration with the given way count, if it is one of the
    /// four supported points.
    pub fn from_ways(ways: u32) -> Option<Self> {
        match ways {
            1 => Some(Dl2Config::K32W1),
            2 => Some(Dl2Config::K64W2),
            4 => Some(Dl2Config::K128W4),
            8 => Some(Dl2Config::K256W8),
            _ => None,
        }
    }
}

impl fmt::Display for Dl2Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.ways();
        write!(f, "{}k{}W/{}k{}W", self.l1_kb(), w, self.l2_kb(), w)
    }
}

/// Adaptive instruction-cache configuration (Table 2).
///
/// The I-cache resizes by ways of 16 KB with associativities 1–4; the
/// branch predictor is jointly resized so it never constrains the clock
/// (§2.2: "each cache configuration is paired with a branch predictor sized
/// to operate at the frequency of the cache").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ICacheConfig {
    /// 16 KB direct-mapped (base: smallest, fastest).
    K16W1,
    /// 32 KB 2-way.
    K32W2,
    /// 48 KB 3-way.
    K48W3,
    /// 64 KB 4-way.
    K64W4,
}

impl ICacheConfig {
    /// All four configurations, smallest/fastest first.
    pub const ALL: [ICacheConfig; 4] = [
        ICacheConfig::K16W1,
        ICacheConfig::K32W2,
        ICacheConfig::K48W3,
        ICacheConfig::K64W4,
    ];

    /// Dense index in `0..4`.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ICacheConfig::K16W1 => 0,
            ICacheConfig::K32W2 => 1,
            ICacheConfig::K48W3 => 2,
            ICacheConfig::K64W4 => 3,
        }
    }

    /// Constructs from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        ICacheConfig::ALL[idx]
    }

    /// Number of active ways (equals the index + 1).
    #[inline]
    pub const fn ways(self) -> u32 {
        self.index() as u32 + 1
    }

    /// Active capacity in KB (each way is a 16 KB RAM).
    #[inline]
    pub const fn kb(self) -> u32 {
        16 * self.ways()
    }
}

impl fmt::Display for ICacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}k{}W", self.kb(), self.ways())
    }
}

/// One of the sixteen fixed instruction-cache options explored for the
/// fully synchronous baseline (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SyncICacheOption {
    size_kb: u32,
    assoc: u32,
}

impl SyncICacheOption {
    /// Creates an option, validating that it is one of the Table 3 rows.
    ///
    /// # Errors
    ///
    /// Returns `None` for geometries outside the explored design space.
    pub fn new(size_kb: u32, assoc: u32) -> Option<Self> {
        let opt = SyncICacheOption { size_kb, assoc };
        if Self::all().contains(&opt) {
            Some(opt)
        } else {
            None
        }
    }

    /// The sixteen Table 3 design points, in table order.
    pub fn all() -> [SyncICacheOption; 16] {
        // (size KB, associativity) exactly as listed in Table 3.
        const ROWS: [(u32, u32); 16] = [
            (4, 1),
            (8, 1),
            (16, 1),
            (32, 1),
            (64, 1),
            (4, 2),
            (8, 2),
            (16, 2),
            (32, 2),
            (64, 2),
            (12, 3),
            (16, 4),
            (24, 3),
            (32, 4),
            (48, 3),
            (64, 4),
        ];
        ROWS.map(|(size_kb, assoc)| SyncICacheOption { size_kb, assoc })
    }

    /// Total capacity in KB.
    #[inline]
    pub const fn size_kb(self) -> u32 {
        self.size_kb
    }

    /// Associativity (1–4).
    #[inline]
    pub const fn assoc(self) -> u32 {
        self.assoc
    }

    /// Capacity of one way in KB.
    #[inline]
    pub const fn way_kb(self) -> u32 {
        self.size_kb / self.assoc
    }

    /// The best-overall synchronous choice found by the paper's exhaustive
    /// sweep: 64 KB direct-mapped (§4).
    pub fn paper_best() -> SyncICacheOption {
        SyncICacheOption {
            size_kb: 64,
            assoc: 1,
        }
    }
}

impl fmt::Display for SyncICacheOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}k{}W", self.size_kb, self.assoc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dl2_geometry() {
        assert_eq!(Dl2Config::K32W1.l1_kb(), 32);
        assert_eq!(Dl2Config::K32W1.l2_kb(), 256);
        assert_eq!(Dl2Config::K256W8.l1_kb(), 256);
        assert_eq!(Dl2Config::K256W8.l2_kb(), 2048);
        for (i, c) in Dl2Config::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Dl2Config::from_index(i), *c);
            assert_eq!(Dl2Config::from_ways(c.ways()), Some(*c));
        }
        assert_eq!(Dl2Config::from_ways(3), None);
    }

    #[test]
    fn icache_geometry() {
        assert_eq!(ICacheConfig::K16W1.kb(), 16);
        assert_eq!(ICacheConfig::K48W3.ways(), 3);
        assert_eq!(ICacheConfig::K64W4.kb(), 64);
        for (i, c) in ICacheConfig::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(ICacheConfig::from_index(i), *c);
        }
    }

    #[test]
    fn sync_options_match_table3() {
        let all = SyncICacheOption::all();
        assert_eq!(all.len(), 16);
        // Direct-mapped options range 4..=64 KB.
        let dm: Vec<u32> = all
            .iter()
            .filter(|o| o.assoc() == 1)
            .map(|o| o.size_kb())
            .collect();
        assert_eq!(dm, vec![4, 8, 16, 32, 64]);
        // All rows are distinct.
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // way size is integral for every option.
        for o in all {
            assert_eq!(o.way_kb() * o.assoc(), o.size_kb());
        }
    }

    #[test]
    fn sync_option_validation() {
        assert!(SyncICacheOption::new(64, 1).is_some());
        assert!(SyncICacheOption::new(128, 1).is_none());
        assert!(SyncICacheOption::new(64, 3).is_none());
        assert_eq!(SyncICacheOption::paper_best().size_kb(), 64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dl2Config::K64W2.to_string(), "64k2W/512k2W");
        assert_eq!(ICacheConfig::K48W3.to_string(), "48k3W");
        assert_eq!(SyncICacheOption::paper_best().to_string(), "64k1W");
    }
}
