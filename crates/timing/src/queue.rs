//! Issue-queue size vocabulary (§2.3).

use std::fmt;

/// One of the four supported issue-queue sizes.
///
/// Both the integer and floating-point issue queues resize over the same
/// four points; the frequency penalty of each size comes from
/// [`TimingModel::iq_frequency`](crate::TimingModel::iq_frequency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IqSize {
    /// 16 entries (base: smallest, fastest — 2 selection-tree levels).
    Q16,
    /// 32 entries.
    Q32,
    /// 48 entries.
    Q48,
    /// 64 entries.
    Q64,
}

impl IqSize {
    /// All four sizes, smallest first.
    pub const ALL: [IqSize; 4] = [IqSize::Q16, IqSize::Q32, IqSize::Q48, IqSize::Q64];

    /// Entry count.
    #[inline]
    pub const fn entries(self) -> u32 {
        match self {
            IqSize::Q16 => 16,
            IqSize::Q32 => 32,
            IqSize::Q48 => 48,
            IqSize::Q64 => 64,
        }
    }

    /// Dense index in `0..4`.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            IqSize::Q16 => 0,
            IqSize::Q32 => 1,
            IqSize::Q48 => 2,
            IqSize::Q64 => 3,
        }
    }

    /// Constructs from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        IqSize::ALL[idx]
    }

    /// The size holding exactly `entries`, if supported.
    pub fn from_entries(entries: u32) -> Option<Self> {
        match entries {
            16 => Some(IqSize::Q16),
            32 => Some(IqSize::Q32),
            48 => Some(IqSize::Q48),
            64 => Some(IqSize::Q64),
            _ => None,
        }
    }

    /// Bits needed by the ILP tracker's per-register timestamps for this
    /// queue size (§3.2: "four bits per register to track the ILP for the
    /// 16 entry queue, five bits for ILP32, and six bits each for ILP48
    /// and ILP64").
    pub const fn ilp_timestamp_bits(self) -> u32 {
        match self {
            IqSize::Q16 => 4,
            IqSize::Q32 => 5,
            IqSize::Q48 => 6,
            IqSize::Q64 => 6,
        }
    }
}

impl fmt::Display for IqSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} entries", self.entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_and_indices() {
        for (i, s) in IqSize::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(IqSize::from_index(i), *s);
            assert_eq!(IqSize::from_entries(s.entries()), Some(*s));
        }
        assert_eq!(IqSize::from_entries(24), None);
    }

    #[test]
    fn timestamp_bits_match_paper() {
        assert_eq!(IqSize::Q16.ilp_timestamp_bits(), 4);
        assert_eq!(IqSize::Q32.ilp_timestamp_bits(), 5);
        assert_eq!(IqSize::Q48.ilp_timestamp_bits(), 6);
        assert_eq!(IqSize::Q64.ilp_timestamp_bits(), 6);
    }

    #[test]
    fn display() {
        assert_eq!(IqSize::Q48.to_string(), "48 entries");
    }
}
