//! Circuit-timing models for the adaptive MCD processor.
//!
//! The paper derives per-configuration clock frequencies from two sources:
//!
//! * **CACTI 3.1** for cache configurations (Figures 2 and 3, Tables 1–3),
//! * **Palacharla et al.** for issue-queue wakeup + selection delay
//!   (Figure 4).
//!
//! Neither tool exists in the Rust ecosystem, so this crate implements
//! analytical stand-ins with the same structure (array + way-select terms
//! for caches; wakeup + log₄ selection-tree terms for queues). The model
//! constants are calibrated so the *published anchor points* hold:
//!
//! * the adaptive I-cache loses ≈31% frequency going direct-mapped → 2-way
//!   (§2.2),
//! * the optimal 64 KB direct-mapped I-cache is ≈27% faster than the
//!   adaptive 64 KB (4-way) configuration (§4),
//! * optimal D/L2 configurations are ≈5% faster than the replicated
//!   adaptive ones (§2.1, Figure 2),
//! * the issue queue suffers a large frequency cliff from 16 entries
//!   (2 selection-tree levels) to 17+ entries (3 levels), then a shallow
//!   slope to 64 entries (§2.3, Figure 4).
//!
//! The downstream simulator consumes only the resulting [`Hertz`] values,
//! so this calibration is exactly the fidelity the paper's evaluation
//! depends on.
//!
//! # Example
//!
//! ```
//! use gals_timing::{TimingModel, ICacheConfig};
//!
//! let model = TimingModel::default();
//! let dm = model.icache_frequency(ICacheConfig::K16W1);
//! let two_way = model.icache_frequency(ICacheConfig::K32W2);
//! let drop = 1.0 - two_way.as_ghz() / dm.as_ghz();
//! assert!((0.28..0.34).contains(&drop), "adaptive DM->2W drop ≈ 31%");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod model;
mod queue;

pub use cache::{Dl2Config, ICacheConfig, SyncICacheOption, Variant};
pub use model::{CachePoint, TimingModel};
pub use queue::IqSize;

pub use gals_common::Hertz;
