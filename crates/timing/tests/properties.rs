//! Property tests for the timing model: the structural invariants every
//! downstream consumer relies on.

use gals_timing::{Dl2Config, ICacheConfig, SyncICacheOption, TimingModel, Variant};
use proptest::prelude::*;

#[test]
fn adaptive_never_faster_than_optimal_at_same_geometry() {
    let m = TimingModel::default();
    for &cfg in &Dl2Config::ALL {
        assert!(
            m.dl2_frequency(cfg, Variant::Adaptive) <= m.dl2_frequency(cfg, Variant::Optimal),
            "{cfg}"
        );
    }
}

#[test]
fn every_sync_option_has_positive_frequency_below_cap() {
    let m = TimingModel::default();
    for opt in SyncICacheOption::all() {
        let f = m.sync_icache_frequency(opt);
        assert!(f.as_ghz() > 0.3, "{opt}: {f}");
        assert!(f <= m.domain_cap(), "{opt}: {f}");
    }
}

#[test]
fn adaptive_icache_frequency_matches_dedicated_accessor() {
    let m = TimingModel::default();
    for &cfg in &ICacheConfig::ALL {
        let p = m.icache_point(cfg);
        assert_eq!(p.frequency, m.icache_frequency(cfg));
        assert!(p.access_ps > 0.0);
    }
}

proptest! {
    /// Issue-queue access time is monotone in the entry count, and the
    /// frequency is its inverse ordering.
    #[test]
    fn iq_timing_monotone(a in 1u32..64, b in 1u32..64) {
        let m = TimingModel::default();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(m.iq_access_ps(lo) <= m.iq_access_ps(hi));
        prop_assert!(m.iq_frequency_at(lo) >= m.iq_frequency_at(hi));
    }

    /// Cache access time grows with both way size and associativity,
    /// for both design variants.
    #[test]
    fn cache_timing_monotone(
        way_a in 4u32..64,
        way_b in 4u32..64,
        assoc in 1u32..8,
    ) {
        let m = TimingModel::default();
        let (lo, hi) = (way_a.min(way_b), way_a.max(way_b));
        for v in [Variant::Adaptive, Variant::Optimal] {
            prop_assert!(
                m.cache_access_ps(lo, assoc, v) <= m.cache_access_ps(hi, assoc, v)
            );
            prop_assert!(
                m.cache_access_ps(lo, assoc, v) <= m.cache_access_ps(lo, assoc + 1, v)
            );
        }
    }

    /// The adaptive way-select penalty is never cheaper than the
    /// optimal one at the same geometry.
    #[test]
    fn adaptive_penalty_dominates(way in 4u32..64, assoc in 2u32..8) {
        let m = TimingModel::default();
        prop_assert!(
            m.cache_access_ps(way, assoc, Variant::Adaptive)
                >= m.cache_access_ps(way, assoc, Variant::Optimal)
        );
    }
}
