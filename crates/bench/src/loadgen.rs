//! Connection-scale load generation against a `gals-serve` server.
//!
//! One machinery for both entry points: `serve_client
//! --connections N --inflight K` (ad-hoc load from the CLI) and
//! `serve_bench`'s connection-scaling phase (the committed artifact).
//! Each of N worker threads owns one TCP connection and keeps up to K
//! requests in flight on it, measuring every request's send→`done`
//! latency; the report aggregates throughput, nearest-rank latency
//! percentiles (p50/p95/p99/p99.9 — the tails are where a
//! thread-per-connection transport drowns first), and a strict
//! protocol-error count (error frames, frames for unknown ids, I/O
//! failures, lost `done`s). A run with a nonzero error count is not a
//! slower run — it is a failed one, and callers gate on it.

use std::net::SocketAddr;
use std::sync::Barrier;
use std::time::Instant;

use gals_common::fxmap::FxHashMap;
use gals_serve::{Client, Priority, Request, RequestKind, Response};

/// What to drive at the server: the request mix and the shape of the
/// connection fleet.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent connections (threads), at least 1.
    pub connections: usize,
    /// Max requests in flight per connection, at least 1.
    pub inflight: usize,
    /// Requests issued per connection.
    pub requests_per_conn: usize,
    /// Request kinds, cycled per request (index `j % kinds.len()` on
    /// every connection — so the mix is identical across connections).
    pub kinds: Vec<RequestKind>,
    /// Priority applied to every request.
    pub priority: Priority,
    /// Deadline applied to every request.
    pub deadline_ms: Option<u64>,
    /// Id prefix (ids are `"{prefix}-c{conn}-{j}"`, unique per run as
    /// long as the prefix is).
    pub id_prefix: String,
}

/// Aggregated outcome of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests that completed with a `done` frame.
    pub completed: usize,
    /// Total `partial`/`expired` frames received.
    pub frames: usize,
    /// Protocol violations: `error` frames, frames for unknown ids,
    /// I/O errors, connections lost with requests still owed.
    pub protocol_errors: usize,
    /// Connections that failed to open.
    pub connect_failures: usize,
    /// Wall time for the whole fleet, seconds.
    pub wall_s: f64,
    /// Per-request send→`done` latency in milliseconds, sorted.
    pub latencies_ms: Vec<f64>,
}

impl LoadReport {
    /// Completed requests per second of wall time.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.wall_s
    }

    /// Nearest-rank latency percentile in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        percentile(&self.latencies_ms, p)
    }

    /// True when every request completed and nothing violated the
    /// protocol — the bar a transport must clear for a configuration
    /// to count as *viable* at this connection count.
    pub fn clean(&self, expected: usize) -> bool {
        self.protocol_errors == 0 && self.connect_failures == 0 && self.completed == expected
    }
}

/// Nearest-rank percentile (`p` in 0..=100) of an already-sorted slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Outcome of one connection's stream.
struct ConnOutcome {
    completed: usize,
    frames: usize,
    protocol_errors: usize,
    latencies_ms: Vec<f64>,
}

/// Runs the load and blocks until every connection finishes.
///
/// # Panics
///
/// Panics if `spec.kinds` is empty.
pub fn run_load(spec: &LoadSpec) -> LoadReport {
    assert!(!spec.kinds.is_empty(), "load spec needs at least one kind");
    let connections = spec.connections.max(1);
    let inflight = spec.inflight.max(1);
    // Open every connection before the clock starts: a C-sized connect
    // storm can overflow the listen backlog, and the resulting SYN
    // retransmits (≈1 s) would be billed to request throughput even
    // though no request was in flight. Every connection thread —
    // including ones that failed to connect — meets the barrier, then
    // the coordinator takes t0 and the fleet starts sending.
    let start = Barrier::new(connections + 1);
    let start = &start;
    let (outcomes, wall_s) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                scope.spawn(move || {
                    let client = Client::connect(spec.addr).ok();
                    start.wait();
                    client.map(|client| drive_connection(spec, client, c, inflight))
                })
            })
            .collect();
        start.wait();
        let t0 = Instant::now();
        let outcomes: Vec<Option<ConnOutcome>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        (outcomes, t0.elapsed().as_secs_f64())
    });

    let mut report = LoadReport {
        completed: 0,
        frames: 0,
        protocol_errors: 0,
        connect_failures: 0,
        wall_s,
        latencies_ms: Vec::new(),
    };
    for outcome in outcomes {
        match outcome {
            None => report.connect_failures += 1,
            Some(o) => {
                report.completed += o.completed;
                report.frames += o.frames;
                report.protocol_errors += o.protocol_errors;
                report.latencies_ms.extend(o.latencies_ms);
            }
        }
    }
    report.latencies_ms.sort_by(f64::total_cmp);
    report
}

/// One connection: pipeline up to `inflight` requests, account every
/// frame against its in-flight id, record send→`done` latencies.
fn drive_connection(
    spec: &LoadSpec,
    mut client: Client,
    conn: usize,
    inflight: usize,
) -> ConnOutcome {
    let mut out = ConnOutcome {
        completed: 0,
        frames: 0,
        protocol_errors: 0,
        latencies_ms: Vec::new(),
    };
    let mut sent_at: FxHashMap<String, Instant> = FxHashMap::default();
    let mut next = 0usize;
    let total = spec.requests_per_conn;
    let send_one = |client: &mut Client, sent_at: &mut FxHashMap<String, Instant>, j: usize| {
        let mut req = Request::new(
            format!("{}-c{conn}-{j}", spec.id_prefix),
            spec.kinds[j % spec.kinds.len()].clone(),
        );
        req.priority = spec.priority;
        req.deadline_ms = spec.deadline_ms;
        let ok = client.send(&req).is_ok();
        if ok {
            sent_at.insert(req.id, Instant::now());
        }
        ok
    };
    while next < total && next < inflight {
        if !send_one(&mut client, &mut sent_at, next) {
            out.protocol_errors += 1;
            return out;
        }
        next += 1;
    }
    while !sent_at.is_empty() {
        let resp = match client.read_response() {
            Ok(resp) => resp,
            Err(_) => {
                // Requests still owed frames: each is a violation.
                out.protocol_errors += sent_at.len();
                return out;
            }
        };
        let id = resp.id().to_string();
        if !sent_at.contains_key(&id) {
            out.protocol_errors += 1;
            continue;
        }
        match resp {
            Response::Partial { .. } | Response::Expired { .. } => out.frames += 1,
            Response::Done { .. } => {
                let started = sent_at.remove(&id).expect("checked above");
                out.latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
                out.completed += 1;
                if next < total {
                    if !send_one(&mut client, &mut sent_at, next) {
                        out.protocol_errors += 1;
                        return out;
                    }
                    next += 1;
                }
            }
            Response::Error { .. } | Response::Status { .. } => {
                // Neither belongs in a work stream.
                sent_at.remove(&id);
                out.protocol_errors += 1;
            }
        }
    }
    out
}
