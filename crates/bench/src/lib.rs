//! Harness support for regenerating every table and figure of the paper.
//!
//! Each evaluation artifact has a dedicated binary (run with
//! `cargo run -p gals-bench --release --bin <name>`):
//!
//! | Artifact | Binary |
//! |---|---|
//! | Table 1 (D/L2 configurations) | `table1_dl2_configs` |
//! | Figure 2 (D/L2 frequencies) | `fig2_dcache_freq` |
//! | Table 2 (adaptive I-cache/BP) | `table2_adaptive_icache` |
//! | Table 3 (fixed I-cache/BP options) | `table3_optimal_icache` |
//! | Figure 3 (I-cache frequencies) | `fig3_icache_freq` |
//! | Figure 4 (issue-queue frequencies) | `fig4_iq_freq` |
//! | Table 4 (controller gate cost) | `table4_hw_cost` |
//! | Table 5 (architectural parameters) | `table5_params` |
//! | Tables 6–8 (benchmark suites) | `tables6_7_8_benchmarks` |
//! | Figure 6 (headline performance) | `fig6_performance` |
//! | Table 9 (program-adaptive choices) | `table9_distribution` |
//! | Figure 7 (reconfiguration traces) | `fig7_traces` |
//! | Policy comparison (beyond the paper) | `policy_compare` |
//!
//! The sweeps behind Figure 6 / Table 9 can also be primed separately via
//! `sweep_sync` and `sweep_program_adaptive`; all measured runtimes are
//! cached (see `gals-explore`).

#![warn(missing_docs)]

pub mod artifacts;
pub mod loadgen;

use std::fmt::Display;

/// Prints a ruled table: header row, then rows of equal arity.
///
/// # Panics
///
/// Panics if any row's arity differs from the header's.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    for row in &rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    println!("\n== {title}");
    let line: String = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}  "))
        .collect();
    println!("{}", line.trim_end());
    println!("{}", "-".repeat(line.trim_end().len()));
    for row in &rows {
        let line: String = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}  "))
            .collect();
        println!("{}", line.trim_end());
    }
}

/// Renders a simple horizontal ASCII bar for figure-style output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round().max(0.0) as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic() {
        print_table("t", &["a", "b"], &[vec!["1", "2"], vec!["30", "40"]]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        print_table("t", &["a", "b"], &[vec!["1"]]);
    }
}
