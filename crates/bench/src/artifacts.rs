//! Implementations of every table/figure regeneration, shared by the
//! per-artifact binaries.

use crate::{bar, print_table};
use gals_core::{
    CoreParams, Dl2Config, ICacheConfig, IqSize, SimResult, SyncICacheOption, TimingModel, Variant,
};
use gals_explore::{Explorer, Fig6Row, ProgramChoice};
use gals_predictor::PredictorGeometry;
use gals_workloads::{suite, BenchmarkSpec};

/// Table 1: L1-D / L2 cache configurations (adapt vs optimal sub-banks).
pub fn table1() {
    let m = TimingModel::default();
    let rows: Vec<Vec<String>> = Dl2Config::ALL
        .iter()
        .map(|&cfg| {
            let l1a = m.dl2_l1_point(cfg, Variant::Adaptive);
            let l1o = m.dl2_l1_point(cfg, Variant::Optimal);
            let l2a = m.dl2_l2_point(cfg, Variant::Adaptive);
            let l2o = m.dl2_l2_point(cfg, Variant::Optimal);
            vec![
                format!("{} KB", cfg.l1_kb()),
                cfg.ways().to_string(),
                l1a.sub_banks.to_string(),
                l1o.sub_banks.to_string(),
                format!("{} KB", cfg.l2_kb()),
                cfg.ways().to_string(),
                l2a.sub_banks.to_string(),
                l2o.sub_banks.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1: L1 data and L2 cache configurations",
        &[
            "L1-D size",
            "assoc",
            "adapt banks",
            "opt banks",
            "L2 size",
            "assoc",
            "adapt banks",
            "opt banks",
        ],
        &rows,
    );
}

/// Figure 2: D-cache/L2 frequency versus configuration.
pub fn fig2() {
    let m = TimingModel::default();
    let rows: Vec<Vec<String>> = Dl2Config::ALL
        .iter()
        .map(|&cfg| {
            let a = m.dl2_frequency(cfg, Variant::Adaptive).as_ghz();
            let o = m.dl2_frequency(cfg, Variant::Optimal).as_ghz();
            vec![
                cfg.to_string(),
                format!("{a:.3}"),
                format!("{o:.3}"),
                bar(a, 1.8, 36),
            ]
        })
        .collect();
    print_table(
        "Figure 2: D-cache/L2 frequency (GHz) vs configuration",
        &[
            "config",
            "adaptive",
            "optimal",
            "adaptive (bar, 1.8 GHz full)",
        ],
        &rows,
    );
}

fn predictor_row(kb: u32) -> Vec<String> {
    let g = PredictorGeometry::for_capacity_kb(kb).expect("table capacity");
    vec![
        format!("{} bits", g.hg_bits),
        g.gshare_entries.to_string(),
        g.meta_entries.to_string(),
        format!("{} bits", g.hl_bits),
        g.local_bht_entries.to_string(),
        g.local_pht_entries.to_string(),
    ]
}

/// Table 2: adaptive I-cache / branch-predictor configurations.
pub fn table2() {
    let m = TimingModel::default();
    let rows: Vec<Vec<String>> = ICacheConfig::ALL
        .iter()
        .map(|&cfg| {
            let p = m.icache_point(cfg);
            let mut row = vec![
                format!("{} KB", cfg.kb()),
                cfg.ways().to_string(),
                p.sub_banks.to_string(),
            ];
            row.extend(predictor_row(cfg.kb()));
            row
        })
        .collect();
    print_table(
        "Table 2: adaptive instruction cache / branch predictor configurations",
        &[
            "size",
            "assoc",
            "sub-banks",
            "hg",
            "gshare PHT",
            "meta",
            "hl",
            "local BHT",
            "local PHT",
        ],
        &rows,
    );
}

/// Table 3: the sixteen fixed (synchronous) I-cache / predictor options.
pub fn table3() {
    let m = TimingModel::default();
    let rows: Vec<Vec<String>> = SyncICacheOption::all()
        .iter()
        .map(|&opt| {
            let p = m.sync_icache_point(opt);
            let mut row = vec![
                format!("{} KB", opt.size_kb()),
                opt.assoc().to_string(),
                p.sub_banks.to_string(),
            ];
            row.extend(predictor_row(opt.size_kb()));
            row
        })
        .collect();
    print_table(
        "Table 3: optimized instruction cache / branch predictor configurations",
        &[
            "size",
            "assoc",
            "sub-banks",
            "hg",
            "gshare PHT",
            "meta",
            "hl",
            "local BHT",
            "local PHT",
        ],
        &rows,
    );
}

/// Figure 3: I-cache frequency versus size (adaptive vs best fixed).
pub fn fig3() {
    let m = TimingModel::default();
    let rows: Vec<Vec<String>> = ICacheConfig::ALL
        .iter()
        .map(|&cfg| {
            let a = m.icache_frequency(cfg).as_ghz();
            let o = m.best_fixed_icache_frequency(cfg.kb()).as_ghz();
            vec![
                format!("{} KB", cfg.kb()),
                format!("{a:.3}"),
                format!("{o:.3}"),
                bar(a, 1.8, 36),
            ]
        })
        .collect();
    print_table(
        "Figure 3: I-cache frequency (GHz) vs size",
        &[
            "size",
            "adaptive",
            "optimal",
            "adaptive (bar, 1.8 GHz full)",
        ],
        &rows,
    );
}

/// Figure 4: issue-queue frequency versus size (16–64 entries, step 4).
pub fn fig4() {
    let m = TimingModel::default();
    let rows: Vec<Vec<String>> = (16..=64)
        .step_by(4)
        .map(|entries| {
            let f = m.iq_frequency_at(entries).as_ghz();
            vec![entries.to_string(), format!("{f:.3}"), bar(f, 1.6, 36)]
        })
        .collect();
    print_table(
        "Figure 4: issue queue frequency (GHz) vs size",
        &["entries", "GHz", "bar (1.6 GHz full)"],
        &rows,
    );
}

/// Table 4: gate-count estimate of the phase-adaptive cache controller.
pub fn table4() {
    let t = gals_cache::hw_cost::table4();
    let mut rows: Vec<Vec<String>> = t
        .components()
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                c.rule.to_string(),
                c.gates().to_string(),
            ]
        })
        .collect();
    rows.push(vec![
        "Total".to_string(),
        String::new(),
        t.total_gates().to_string(),
    ]);
    print_table(
        "Table 4: hardware for the phase-adaptive cache algorithm (per cache pair)",
        &["component", "rule", "equivalent gates"],
        &rows,
    );
    println!(
        "chip budget: {} gates for both controllers (§3.1); decision latency ≈ {} cycles",
        gals_cache::hw_cost::total_chip_budget_gates(),
        gals_cache::hw_cost::DECISION_LATENCY_CYCLES
    );
}

/// Table 5: architectural parameters of the simulated processor.
pub fn table5() {
    let p = CoreParams::default();
    let adaptive = {
        // The adaptive machine's extra mispredict depth (§2).
        let m = gals_core::MachineConfig::phase_adaptive(gals_core::McdConfig::smallest());
        (
            m.params.mispredict_fe_cycles,
            m.params.mispredict_int_cycles,
        )
    };
    let rows = vec![
        vec![
            "Fetch queue".to_string(),
            format!("{} entries", p.fetch_queue),
        ],
        vec![
            "Branch mispredict penalty".to_string(),
            format!(
                "{} front-end + {} integer cycles ({} + {} for adaptive MCD)",
                p.mispredict_fe_cycles, p.mispredict_int_cycles, adaptive.0, adaptive.1
            ),
        ],
        vec![
            "Decode, issue, retire widths".to_string(),
            format!("{}, {}, {}", p.decode_width, p.issue_width, p.retire_width),
        ],
        vec![
            "L1 cache latency (I and D)".to_string(),
            "2/8, 2/5, 2/2, or 2/- cycles (A and optional B partition)".to_string(),
        ],
        vec![
            "L2 cache latency".to_string(),
            "12/43, 12/27, 12/12, or 12/- cycles".to_string(),
        ],
        vec![
            "Memory latency".to_string(),
            format!(
                "{} ns (first access), {} ns (subsequent)",
                p.mem_first.as_ns(),
                p.mem_burst.as_ns()
            ),
        ],
        vec![
            "Integer ALUs".to_string(),
            format!("{} + {} mult/div unit", p.int_alus, p.int_muldiv),
        ],
        vec![
            "FP ALUs".to_string(),
            format!("{} + {} mult/div/sqrt unit", p.fp_alus, p.fp_muldiv),
        ],
        vec![
            "Load/store queue".to_string(),
            format!("{} entries", p.lsq_entries),
        ],
        vec![
            "Physical register file".to_string(),
            format!("{} integer, {} FP", p.phys_int, p.phys_fp),
        ],
        vec![
            "Reorder buffer".to_string(),
            format!("{} entries", p.rob_entries),
        ],
    ];
    print_table(
        "Table 5: architectural parameters",
        &["parameter", "value"],
        &rows,
    );
}

/// Tables 6–8: the benchmark suites with their (paper) windows.
pub fn tables678() {
    for (title, suite_filter) in [
        (
            "Table 6: MediaBench applications",
            gals_workloads::Suite::MediaBench,
        ),
        ("Table 7: Olden applications", gals_workloads::Suite::Olden),
        ("Table 8a: SPEC2000 integer", gals_workloads::Suite::SpecInt),
        (
            "Table 8b: SPEC2000 floating-point",
            gals_workloads::Suite::SpecFp,
        ),
    ] {
        let rows: Vec<Vec<String>> = suite::all()
            .into_iter()
            .filter(|s| s.suite() == suite_filter)
            .map(|s| {
                vec![
                    s.name().to_string(),
                    s.paper_window().to_string(),
                    format!("{} KB code", s.code().footprint_bytes / 1024),
                    format!(
                        "{} KB data",
                        s.segments().iter().map(|g| g.bytes).sum::<u64>() / 1024
                    ),
                ]
            })
            .collect();
        print_table(
            title,
            &[
                "benchmark",
                "dataset / paper window",
                "synthetic code",
                "synthetic data",
            ],
            &rows,
        );
    }
}

/// Figure 6 + summary: the headline result.
pub fn fig6(ex: &mut Explorer, suite: &[BenchmarkSpec]) -> Vec<Fig6Row> {
    let rows = ex.figure6(suite).expect("figure 6 pipeline");
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:+.1}%", r.program_improvement_pct()),
                format!("{:+.1}%", r.phase_improvement_pct()),
                r.program_cfg.key(),
            ]
        })
        .collect();
    print_table(
        "Figure 6: runtime improvement over the best fully synchronous machine",
        &[
            "benchmark",
            "Program-Adaptive",
            "Phase-Adaptive",
            "program config",
        ],
        &printable,
    );
    let prog_mean = mean_improvement(rows.iter().map(|r| (r.sync_ns, r.program_ns)));
    let phase_mean = mean_improvement(rows.iter().map(|r| (r.sync_ns, r.phase_ns)));
    println!(
        "\nmean improvement: Program-Adaptive {prog_mean:+.1}% (paper: +17.6%), \
         Phase-Adaptive {phase_mean:+.1}% (paper: +20.4%)"
    );
    rows
}

/// Suite-level mean improvement: geometric mean of per-app speedups,
/// expressed as a percentage (the paper's "overall performance
/// improvement").
pub fn mean_improvement(pairs: impl Iterator<Item = (f64, f64)>) -> f64 {
    let speedups: Vec<f64> = pairs.map(|(base, new)| base / new).collect();
    (gals_common::stats::geomean(&speedups).unwrap_or(1.0) - 1.0) * 100.0
}

/// Table 9: distribution of Program-Adaptive structure choices.
pub fn table9(choices: &[ProgramChoice]) {
    let n = choices.len().max(1) as f64;
    let pct = |count: usize| format!("{:.0}%", count as f64 / n * 100.0);

    let iq_rows: Vec<Vec<String>> = IqSize::ALL
        .iter()
        .map(|&s| {
            let int_n = choices.iter().filter(|c| c.best.iq_int == s).count();
            let fp_n = choices.iter().filter(|c| c.best.iq_fp == s).count();
            vec![s.entries().to_string(), pct(int_n), pct(fp_n)]
        })
        .collect();
    print_table(
        "Table 9a: issue-queue choices",
        &["entries", "Integer IQ", "FP IQ"],
        &iq_rows,
    );

    let d_rows: Vec<Vec<String>> = Dl2Config::ALL
        .iter()
        .map(|&c| {
            let n_c = choices.iter().filter(|x| x.best.dl2 == c).count();
            vec![c.to_string(), pct(n_c)]
        })
        .collect();
    print_table(
        "Table 9b: D-cache/L2 choices",
        &["config", "share"],
        &d_rows,
    );

    let i_rows: Vec<Vec<String>> = ICacheConfig::ALL
        .iter()
        .map(|&c| {
            let n_c = choices.iter().filter(|x| x.best.icache == c).count();
            vec![c.to_string(), pct(n_c)]
        })
        .collect();
    print_table("Table 9c: I-cache choices", &["config", "share"], &i_rows);
}

/// Figure 7: reconfiguration traces for apsi (D/L2) and art (integer IQ).
pub fn fig7(ex: &mut Explorer) {
    let apsi = ex.phase_run(&suite::by_name("apsi").expect("apsi in suite"));
    println!("\n== Figure 7(a): apsi D/L2 cache configurations over time");
    print_trace(&apsi, |k| match k {
        gals_core::ReconfigKind::Dl2(c) => Some(c.to_string()),
        _ => None,
    });

    let art = ex.phase_run(&suite::by_name("art").expect("art in suite"));
    println!("\n== Figure 7(b): art integer issue-queue configurations over time");
    print_trace(&art, |k| match k {
        gals_core::ReconfigKind::IqInt(s) => Some(s.entries().to_string()),
        gals_core::ReconfigKind::IqFp(s) => Some(format!("(fp {})", s.entries())),
        _ => None,
    });
}

fn print_trace(r: &SimResult, select: impl Fn(gals_core::ReconfigKind) -> Option<String>) {
    let mut any = false;
    for ev in &r.reconfigs {
        if let Some(label) = select(ev.kind) {
            println!("  @{:>7} committed: {label}", ev.at_committed);
            any = true;
        }
    }
    if !any {
        println!("  (no reconfigurations of this structure in the window)");
    }
}
