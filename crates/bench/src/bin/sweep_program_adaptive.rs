//! Primes the 256-configuration Program-Adaptive sweep cache and prints
//! each benchmark's best configuration.
fn main() {
    let mut ex = gals_explore::Explorer::from_env().expect("cache");
    let suite = gals_workloads::suite::all();
    let choices = ex.program_sweep(&suite).expect("program sweep");
    for c in &choices {
        println!(
            "{:16} -> {:32} ({:.1} ns)",
            c.benchmark,
            c.best.key(),
            c.runtime_ns
        );
    }
}
