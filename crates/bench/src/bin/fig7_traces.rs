//! Figure 7: phase-adaptive reconfiguration traces (apsi D/L2, art IQ).
fn main() {
    let mut ex = gals_explore::Explorer::from_env().expect("cache");
    gals_bench::artifacts::fig7(&mut ex);
}
