//! Primes the 1,024-configuration synchronous sweep cache and reports
//! the best-overall machine (§4).
fn main() {
    let mut ex = gals_explore::Explorer::from_env().expect("cache");
    let suite = gals_workloads::suite::all();
    let out = ex.sync_sweep(&suite).expect("sync sweep");
    println!(
        "best overall synchronous configuration: {} (geomean runtime {:.1} ns @ {} insts)",
        out.best.key(),
        out.best_geomean_ns,
        ex.sweep_window()
    );
    let mut ranked = out.geomeans_ns.clone();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("top 5:");
    for (cfg, g) in ranked.iter().take(5) {
        println!("  {:32} {:.1} ns", cfg.key(), g);
    }
}
