//! `gals-serve` scheduler benchmark: drives a heterogeneous request
//! stream — mixed windows, machine styles, policies — from many
//! concurrent clients against an in-process server and compares it
//! with the same stream executed as independent `Explorer`-style
//! invocations (a fresh engine and a cold private cache per request —
//! what N scripts calling the library would do). Also asserts the
//! determinism invariant: every served runtime is bit-identical to the
//! same configuration run directly through the simulator, regardless
//! of scheduling order.
//!
//! A second phase saturates a one-worker server with a mixed-priority
//! stream and measures per-request latency (reported as nearest-rank
//! p50/p95/p99 per priority class): the scheduler must give
//! high-priority requests a lower median latency than the low-priority
//! backlog they overtake.
//!
//! Writes `BENCH_serve.json`. Knobs: `GALS_SERVE_BENCH_WINDOW`
//! (instructions per run, default 3,000), `GALS_SERVE_BENCH_CLIENTS`
//! (default 8), `GALS_SERVE_BENCH_OUT` (default `BENCH_serve.json`).

use std::fmt::Write as _;
use std::time::Instant;

use gals_core::{ControlPolicy, McdConfig, Simulator, SyncConfig};
use gals_explore::{MeasureItem, ResultCache, SweepEngine};
use gals_serve::{Client, Priority, Request, RequestKind, Response, ServeConfig, Server};
use gals_workloads::suite;

/// One logical unit of the mixed stream, in both its wire form and its
/// direct (library) form.
#[derive(Clone)]
struct Unit {
    kind: RequestKind,
    item: MeasureItem,
}

impl Unit {
    /// The unit's instruction window — single source of truth is the
    /// wire request, so the direct (library) comparison runs can never
    /// drift to a different window than the served ones.
    fn window(&self) -> u64 {
        match &self.kind {
            RequestKind::RunConfig { window, .. }
            | RequestKind::Sweep { window, .. }
            | RequestKind::PolicyCompare { window, .. } => *window,
            RequestKind::Status => unreachable!("the pool holds only measurement requests"),
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    gals_common::env::parse_env_or(name, default)
}

fn median(sorted: &mut [f64]) -> f64 {
    sorted.sort_by(f64::total_cmp);
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted[sorted.len() / 2]
}

/// Nearest-rank percentile (`p` in 0..=100) of an already-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A pool of distinct work units mixing machine styles, benchmarks,
/// policies, *and windows* — the heterogeneous stream the shared
/// scheduler executes in one pass (with heavy overlap across clients,
/// which is what in-flight dedupe and the cache exist to exploit).
fn unit_pool(window: u64) -> Vec<Unit> {
    let benches = ["adpcm_encode", "gzip", "apsi", "crafty", "art"];
    let mut units = Vec::new();
    for (bi, bench) in benches.iter().enumerate() {
        let spec = suite::by_name(bench).expect("benchmark in suite");
        // Alternate two windows across the pool so no two-request
        // group is window-homogeneous.
        // (`max(1)` keeps a tiny smoke window from becoming 0, which
        // on the wire means "server default" and would diverge from
        // the direct run.)
        let w = |salt: usize| {
            if (bi + salt).is_multiple_of(2) {
                window
            } else {
                (window / 2).max(1)
            }
        };
        // Phase-adaptive under two policies.
        for (pi, policy) in [ControlPolicy::PaperArgmin, ControlPolicy::Static]
            .into_iter()
            .enumerate()
        {
            units.push(Unit {
                kind: RequestKind::RunConfig {
                    bench: bench.to_string(),
                    mode: "phase".to_string(),
                    cfg: None,
                    policy: Some(policy),
                    window: w(pi),
                },
                item: MeasureItem::phase(spec.clone(), policy),
            });
        }
        // One program-adaptive and one synchronous point per benchmark,
        // spread across the spaces.
        let prog_cfgs = McdConfig::enumerate();
        let prog_idx = (bi * 61) % prog_cfgs.len();
        units.push(Unit {
            kind: RequestKind::RunConfig {
                bench: bench.to_string(),
                mode: "prog".to_string(),
                cfg: Some(prog_idx),
                policy: None,
                window: w(2),
            },
            item: MeasureItem::program(spec.clone(), prog_cfgs[prog_idx]),
        });
        let sync_cfgs = SyncConfig::enumerate();
        let sync_idx = (bi * 197) % sync_cfgs.len();
        units.push(Unit {
            kind: RequestKind::RunConfig {
                bench: bench.to_string(),
                mode: "sync".to_string(),
                cfg: Some(sync_idx),
                policy: None,
                window: w(3),
            },
            item: MeasureItem::sync(spec.clone(), sync_cfgs[sync_idx]),
        });
    }
    units
}

/// Phase A: the mixed-window stream through the shared scheduler vs
/// independent library invocations, plus the bit-identity check.
/// Returns `(serve_ms, independent_ms, simulated, total_requests,
/// distinct)`.
fn batching_phase(window: u64, clients: usize) -> (f64, f64, u64, usize, usize) {
    let pool = unit_pool(window);
    // Each client walks the pool from a different offset: every unit is
    // requested by several clients (the multi-tenant overlap case).
    let per_client = pool.len();
    let streams: Vec<Vec<Unit>> = (0..clients)
        .map(|c| {
            (0..per_client)
                .map(|j| pool[(c * 3 + j) % pool.len()].clone())
                .collect()
        })
        .collect();
    let total_requests = clients * per_client;

    // --- Batched, through the server's shared scheduler. -------------
    let server = Server::start(ServeConfig::default()).expect("start server");
    let addr = server.local_addr();
    let t0 = Instant::now();
    let served: Vec<Vec<(String, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(c, stream)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut results = Vec::new();
                    for (j, unit) in stream.iter().enumerate() {
                        let responses = client
                            .request(&Request::new(format!("c{c}-{j}"), unit.kind.clone()))
                            .expect("request");
                        for resp in responses {
                            if let Response::Partial {
                                key, runtime_ns, ..
                            } = resp
                            {
                                results.push((key, runtime_ns));
                            }
                        }
                    }
                    results
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let serve_ms = t0.elapsed().as_secs_f64() * 1e3;
    let simulated = server.simulated_count();
    server.shutdown();

    // --- The same stream as independent library invocations. ---------
    let t1 = Instant::now();
    for stream in &streams {
        for unit in stream {
            // A fresh engine with a cold private cache per request:
            // nothing shared, nothing batched.
            let engine = SweepEngine::new(ResultCache::in_memory());
            let ns = engine.measure(std::slice::from_ref(&unit.item), unit.window())[0];
            assert!(ns > 0.0);
        }
    }
    let independent_ms = t1.elapsed().as_secs_f64() * 1e3;

    // --- Determinism: served ≡ direct, any scheduling order. ---------
    let mut checked = 0usize;
    for unit in &pool {
        let direct = Simulator::new(unit.item.machine.clone())
            .run(&mut unit.item.spec.stream(), unit.window())
            .runtime_ns();
        // Compare against every served occurrence of this unit.
        let spec_name = unit.item.spec.name();
        for (c, stream) in streams.iter().enumerate() {
            for (j, u) in stream.iter().enumerate() {
                if u.item.config_key == unit.item.config_key
                    && u.item.spec.name() == spec_name
                    && u.item.mode == unit.item.mode
                    && u.window() == unit.window()
                {
                    let (_, ns) = &served[c][j];
                    assert_eq!(
                        ns.to_bits(),
                        direct.to_bits(),
                        "served result for {spec_name}/{} must be bit-identical",
                        unit.item.config_key
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= total_requests, "every request verified");
    (
        serve_ms,
        independent_ms,
        simulated,
        total_requests,
        pool.len(),
    )
}

/// Phase B: saturate a one-worker server with a mixed-priority stream
/// and measure per-request latency (send → `done`). Returns the raw
/// per-class latency samples in milliseconds: `(highs, lows)`.
fn priority_phase(window: u64, clients: usize) -> (Vec<f64>, Vec<f64>) {
    const LOW_PER_CLIENT: usize = 10;
    const HIGH_PER_CLIENT: usize = 3;
    // One worker guarantees a saturated queue on any host, which is
    // the regime priorities exist for.
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr();
    let lat: Vec<(Vec<f64>, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    // Distinct config per request, disjoint across
                    // clients (modulo the 256-config space): no dedupe
                    // blurs the latency signal at default fleet sizes.
                    let cfg = |j: usize| (c * (LOW_PER_CLIENT + HIGH_PER_CLIENT) + j) % 256;
                    let t0 = Instant::now();
                    let mut sent: Vec<(String, Priority, f64)> = Vec::new();
                    // Pipeline the low backlog with highs interleaved
                    // partway through, before reading anything.
                    let mut hi = 0;
                    for j in 0..LOW_PER_CLIENT {
                        let mut req = Request::new(
                            format!("c{c}-low{j}"),
                            RequestKind::RunConfig {
                                bench: "gzip".into(),
                                mode: "prog".into(),
                                cfg: Some(cfg(j)),
                                policy: None,
                                window,
                            },
                        );
                        req.priority = Priority::Low;
                        client.send(&req).expect("send");
                        sent.push((req.id, Priority::Low, t0.elapsed().as_secs_f64()));
                        if j % 3 == 2 && hi < HIGH_PER_CLIENT {
                            let mut req = Request::new(
                                format!("c{c}-high{hi}"),
                                RequestKind::RunConfig {
                                    bench: "gzip".into(),
                                    mode: "prog".into(),
                                    cfg: Some(cfg(LOW_PER_CLIENT + hi)),
                                    policy: None,
                                    window,
                                },
                            );
                            req.priority = Priority::High;
                            client.send(&req).expect("send");
                            sent.push((req.id, Priority::High, t0.elapsed().as_secs_f64()));
                            hi += 1;
                        }
                    }
                    // Read until every request's done frame arrived.
                    let mut highs = Vec::new();
                    let mut lows = Vec::new();
                    while highs.len() + lows.len() < sent.len() {
                        let resp = client.read_response().expect("read");
                        if let Response::Error { message, .. } = &resp {
                            panic!("server error: {message}");
                        }
                        if let Response::Done { .. } = &resp {
                            let at = t0.elapsed().as_secs_f64();
                            let (_, prio, sent_at) = sent
                                .iter()
                                .find(|(id, _, _)| id == resp.id())
                                .expect("done for a sent request");
                            let ms = (at - sent_at) * 1e3;
                            match prio {
                                Priority::High => highs.push(ms),
                                _ => lows.push(ms),
                            }
                        }
                    }
                    (highs, lows)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    server.shutdown();
    let highs: Vec<f64> = lat.iter().flat_map(|(h, _)| h.iter().copied()).collect();
    let lows: Vec<f64> = lat.iter().flat_map(|(_, l)| l.iter().copied()).collect();
    (highs, lows)
}

fn main() {
    let window = env_u64("GALS_SERVE_BENCH_WINDOW", 3_000);
    let clients = env_u64("GALS_SERVE_BENCH_CLIENTS", 8) as usize;
    let out_path = gals_common::env::var("GALS_SERVE_BENCH_OUT")
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let (serve_ms, independent_ms, simulated, total_requests, distinct) =
        batching_phase(window, clients);
    let speedup = independent_ms / serve_ms;
    let (mut highs, mut lows) = priority_phase(window, clients);
    let high_ms = median(&mut highs);
    let low_ms = median(&mut lows);
    // `median` leaves the slices sorted, which is what `percentile`
    // requires. Tail percentiles are the serving metric that matters
    // under saturation: a priority scheme that only helps the median
    // can still strand individual high-priority requests behind the
    // backlog, and p95/p99 is where that shows.
    let (high_p50, high_p95, high_p99) = (
        percentile(&highs, 50.0),
        percentile(&highs, 95.0),
        percentile(&highs, 99.0),
    );
    let (low_p50, low_p95, low_p99) = (
        percentile(&lows, 50.0),
        percentile(&lows, 95.0),
        percentile(&lows, 99.0),
    );

    println!("gals-serve scheduler benchmark");
    println!("  clients            {clients}");
    println!("  requests           {total_requests} ({distinct} distinct configs, 2 windows)");
    println!("  window             {window} insts (and {})", window / 2);
    println!("  simulations run    {simulated}");
    println!("  batched (server)   {serve_ms:.1} ms");
    println!("  independent        {independent_ms:.1} ms");
    println!("  speedup            {speedup:.2}x");
    println!(
        "  high-pri latency   p50 {high_p50:.1} / p95 {high_p95:.1} / p99 {high_p99:.1} ms \
         (saturated, 1 worker)"
    );
    println!("  low-pri latency    p50 {low_p50:.1} / p95 {low_p95:.1} / p99 {low_p99:.1} ms");
    assert!(
        speedup > 1.0,
        "the shared scheduler must beat independent invocations"
    );
    assert!(
        high_ms < low_ms,
        "under saturation, high priority must see lower median latency \
         ({high_ms:.1} ms vs {low_ms:.1} ms)"
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"gals-mcd-serve-bench-v3\",\n");
    let _ = writeln!(json, "  \"window\": {window},");
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"requests\": {total_requests},");
    let _ = writeln!(json, "  \"distinct_configs\": {distinct},");
    let _ = writeln!(json, "  \"simulations_run\": {simulated},");
    let _ = writeln!(json, "  \"batched_ms\": {serve_ms:.1},");
    let _ = writeln!(json, "  \"independent_ms\": {independent_ms:.1},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.2},");
    let _ = writeln!(json, "  \"high_priority_median_ms\": {high_ms:.1},");
    let _ = writeln!(json, "  \"low_priority_median_ms\": {low_ms:.1},");
    let _ = writeln!(
        json,
        "  \"high_priority_latency_ms\": {{\"p50\": {high_p50:.1}, \"p95\": {high_p95:.1}, \
         \"p99\": {high_p99:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"low_priority_latency_ms\": {{\"p50\": {low_p50:.1}, \"p95\": {low_p95:.1}, \
         \"p99\": {low_p99:.1}}},"
    );
    json.push_str("  \"bit_identical_to_direct\": true\n}\n");
    std::fs::write(&out_path, json).expect("write artifact");
    println!("  wrote {out_path}");
}
