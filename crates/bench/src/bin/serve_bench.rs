//! `gals-serve` scheduler benchmark: drives a heterogeneous request
//! stream — mixed windows, machine styles, policies — from many
//! concurrent clients against an in-process server and compares it
//! with the same stream executed as independent `Explorer`-style
//! invocations (a fresh engine and a cold private cache per request —
//! what N scripts calling the library would do). Also asserts the
//! determinism invariant: every served runtime is bit-identical to the
//! same configuration run directly through the simulator, regardless
//! of scheduling order.
//!
//! A second phase saturates a one-worker server with a mixed-priority
//! stream and measures per-request latency (reported as nearest-rank
//! p50/p95/p99/p99.9 per priority class): the scheduler must give
//! high-priority requests a lower median latency than the low-priority
//! backlog they overtake.
//!
//! A third phase measures connection scaling: both transports serve
//! the same cache-hot request mix from C = 8 / 64 / 256 concurrent
//! closed-loop connections (`gals_bench::loadgen`), reporting
//! throughput and p50/p95/p99/p99.9 latency per point (each point the
//! median-of-3 repeats by p99). The epoll reactor must
//! stay clean (zero protocol errors) at every point; the
//! thread-per-connection transport's largest clean point is recorded
//! as its *viable* ceiling, and the reactor's tail at C_max is
//! compared against the threads tail at that ceiling.
//!
//! Writes `BENCH_serve.json` (schema v5). Knobs:
//! `GALS_SERVE_BENCH_WINDOW` (instructions per run, default 3,000),
//! `GALS_SERVE_BENCH_CLIENTS` (default 8), `GALS_SERVE_BENCH_CONNS`
//! (connection grid, default `8,64,256`), `GALS_SERVE_BENCH_OUT`
//! (default `BENCH_serve.json`). `--check <committed.json>` re-runs
//! the benchmark and gates the ratio metrics (which transfer across
//! hosts) against the committed artifact, with `--tolerance` slack
//! (default 25%: ratios of same-host throughput runs wander more on
//! small hosts than the simulator ratios `throughput --check` gates).

use std::fmt::Write as _;
use std::time::Instant;

use gals_bench::loadgen::{percentile, run_load, LoadReport, LoadSpec};
use gals_core::{ControlPolicy, McdConfig, Simulator, SyncConfig};
use gals_explore::{MeasureItem, ResultCache, SweepEngine};
use gals_serve::{
    Client, Priority, Request, RequestKind, Response, ServeConfig, Server, Transport,
};
use gals_workloads::suite;

/// One logical unit of the mixed stream, in both its wire form and its
/// direct (library) form.
#[derive(Clone)]
struct Unit {
    kind: RequestKind,
    item: MeasureItem,
}

impl Unit {
    /// The unit's instruction window — single source of truth is the
    /// wire request, so the direct (library) comparison runs can never
    /// drift to a different window than the served ones.
    fn window(&self) -> u64 {
        match &self.kind {
            RequestKind::RunConfig { window, .. }
            | RequestKind::Sweep { window, .. }
            | RequestKind::PolicyCompare { window, .. } => *window,
            RequestKind::Status => unreachable!("the pool holds only measurement requests"),
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    gals_common::env::parse_env_or(name, default)
}

fn median(sorted: &mut [f64]) -> f64 {
    sorted.sort_by(f64::total_cmp);
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted[sorted.len() / 2]
}

/// A pool of distinct work units mixing machine styles, benchmarks,
/// policies, *and windows* — the heterogeneous stream the shared
/// scheduler executes in one pass (with heavy overlap across clients,
/// which is what in-flight dedupe and the cache exist to exploit).
fn unit_pool(window: u64) -> Vec<Unit> {
    let benches = ["adpcm_encode", "gzip", "apsi", "crafty", "art"];
    let mut units = Vec::new();
    for (bi, bench) in benches.iter().enumerate() {
        let spec = suite::by_name(bench).expect("benchmark in suite");
        // Alternate two windows across the pool so no two-request
        // group is window-homogeneous.
        // (`max(1)` keeps a tiny smoke window from becoming 0, which
        // on the wire means "server default" and would diverge from
        // the direct run.)
        let w = |salt: usize| {
            if (bi + salt).is_multiple_of(2) {
                window
            } else {
                (window / 2).max(1)
            }
        };
        // Phase-adaptive under two policies.
        for (pi, policy) in [ControlPolicy::PaperArgmin, ControlPolicy::Static]
            .into_iter()
            .enumerate()
        {
            units.push(Unit {
                kind: RequestKind::RunConfig {
                    bench: bench.to_string(),
                    mode: "phase".to_string(),
                    cfg: None,
                    policy: Some(policy),
                    window: w(pi),
                },
                item: MeasureItem::phase(spec.clone(), policy),
            });
        }
        // One program-adaptive and one synchronous point per benchmark,
        // spread across the spaces.
        let prog_cfgs = McdConfig::enumerate();
        let prog_idx = (bi * 61) % prog_cfgs.len();
        units.push(Unit {
            kind: RequestKind::RunConfig {
                bench: bench.to_string(),
                mode: "prog".to_string(),
                cfg: Some(prog_idx),
                policy: None,
                window: w(2),
            },
            item: MeasureItem::program(spec.clone(), prog_cfgs[prog_idx]),
        });
        let sync_cfgs = SyncConfig::enumerate();
        let sync_idx = (bi * 197) % sync_cfgs.len();
        units.push(Unit {
            kind: RequestKind::RunConfig {
                bench: bench.to_string(),
                mode: "sync".to_string(),
                cfg: Some(sync_idx),
                policy: None,
                window: w(3),
            },
            item: MeasureItem::sync(spec.clone(), sync_cfgs[sync_idx]),
        });
    }
    units
}

/// Phase A: the mixed-window stream through the shared scheduler vs
/// independent library invocations, plus the bit-identity check.
/// Returns `(serve_ms, independent_ms, simulated, total_requests,
/// distinct)`.
fn batching_phase(window: u64, clients: usize) -> (f64, f64, u64, usize, usize) {
    let pool = unit_pool(window);
    // Each client walks the pool from a different offset: every unit is
    // requested by several clients (the multi-tenant overlap case).
    let per_client = pool.len();
    let streams: Vec<Vec<Unit>> = (0..clients)
        .map(|c| {
            (0..per_client)
                .map(|j| pool[(c * 3 + j) % pool.len()].clone())
                .collect()
        })
        .collect();
    let total_requests = clients * per_client;

    // --- Batched, through the server's shared scheduler. -------------
    let server = Server::start(ServeConfig::default()).expect("start server");
    let addr = server.local_addr();
    let t0 = Instant::now();
    let served: Vec<Vec<(String, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(c, stream)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut results = Vec::new();
                    for (j, unit) in stream.iter().enumerate() {
                        let responses = client
                            .request(&Request::new(format!("c{c}-{j}"), unit.kind.clone()))
                            .expect("request");
                        for resp in responses {
                            if let Response::Partial {
                                key, runtime_ns, ..
                            } = resp
                            {
                                results.push((key, runtime_ns));
                            }
                        }
                    }
                    results
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let serve_ms = t0.elapsed().as_secs_f64() * 1e3;
    let simulated = server.simulated_count();
    server.shutdown();

    // --- The same stream as independent library invocations. ---------
    let t1 = Instant::now();
    for stream in &streams {
        for unit in stream {
            // A fresh engine with a cold private cache per request:
            // nothing shared, nothing batched.
            let engine = SweepEngine::new(ResultCache::in_memory());
            let ns = engine.measure(std::slice::from_ref(&unit.item), unit.window())[0];
            assert!(ns > 0.0);
        }
    }
    let independent_ms = t1.elapsed().as_secs_f64() * 1e3;

    // --- Determinism: served ≡ direct, any scheduling order. ---------
    let mut checked = 0usize;
    for unit in &pool {
        let direct = Simulator::new(unit.item.machine.clone())
            .run(&mut unit.item.spec.stream(), unit.window())
            .runtime_ns();
        // Compare against every served occurrence of this unit.
        let spec_name = unit.item.spec.name();
        for (c, stream) in streams.iter().enumerate() {
            for (j, u) in stream.iter().enumerate() {
                if u.item.config_key == unit.item.config_key
                    && u.item.spec.name() == spec_name
                    && u.item.mode == unit.item.mode
                    && u.window() == unit.window()
                {
                    let (_, ns) = &served[c][j];
                    assert_eq!(
                        ns.to_bits(),
                        direct.to_bits(),
                        "served result for {spec_name}/{} must be bit-identical",
                        unit.item.config_key
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= total_requests, "every request verified");
    (
        serve_ms,
        independent_ms,
        simulated,
        total_requests,
        pool.len(),
    )
}

/// Phase B: saturate a one-worker server with a mixed-priority stream
/// and measure per-request latency (send → `done`). Returns the raw
/// per-class latency samples in milliseconds: `(highs, lows)`.
fn priority_phase(window: u64, clients: usize) -> (Vec<f64>, Vec<f64>) {
    const LOW_PER_CLIENT: usize = 10;
    const HIGH_PER_CLIENT: usize = 3;
    // One worker guarantees a saturated queue on any host, which is
    // the regime priorities exist for.
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr();
    let lat: Vec<(Vec<f64>, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    // Distinct config per request, disjoint across
                    // clients (modulo the 256-config space): no dedupe
                    // blurs the latency signal at default fleet sizes.
                    let cfg = |j: usize| (c * (LOW_PER_CLIENT + HIGH_PER_CLIENT) + j) % 256;
                    let t0 = Instant::now();
                    let mut sent: Vec<(String, Priority, f64)> = Vec::new();
                    // Pipeline the low backlog with highs interleaved
                    // partway through, before reading anything.
                    let mut hi = 0;
                    for j in 0..LOW_PER_CLIENT {
                        let mut req = Request::new(
                            format!("c{c}-low{j}"),
                            RequestKind::RunConfig {
                                bench: "gzip".into(),
                                mode: "prog".into(),
                                cfg: Some(cfg(j)),
                                policy: None,
                                window,
                            },
                        );
                        req.priority = Priority::Low;
                        client.send(&req).expect("send");
                        sent.push((req.id, Priority::Low, t0.elapsed().as_secs_f64()));
                        if j % 3 == 2 && hi < HIGH_PER_CLIENT {
                            let mut req = Request::new(
                                format!("c{c}-high{hi}"),
                                RequestKind::RunConfig {
                                    bench: "gzip".into(),
                                    mode: "prog".into(),
                                    cfg: Some(cfg(LOW_PER_CLIENT + hi)),
                                    policy: None,
                                    window,
                                },
                            );
                            req.priority = Priority::High;
                            client.send(&req).expect("send");
                            sent.push((req.id, Priority::High, t0.elapsed().as_secs_f64()));
                            hi += 1;
                        }
                    }
                    // Read until every request's done frame arrived.
                    let mut highs = Vec::new();
                    let mut lows = Vec::new();
                    while highs.len() + lows.len() < sent.len() {
                        let resp = client.read_response().expect("read");
                        if let Response::Error { message, .. } = &resp {
                            panic!("server error: {message}");
                        }
                        if let Response::Done { .. } = &resp {
                            let at = t0.elapsed().as_secs_f64();
                            let (_, prio, sent_at) = sent
                                .iter()
                                .find(|(id, _, _)| id == resp.id())
                                .expect("done for a sent request");
                            let ms = (at - sent_at) * 1e3;
                            match prio {
                                Priority::High => highs.push(ms),
                                _ => lows.push(ms),
                            }
                        }
                    }
                    (highs, lows)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    server.shutdown();
    let highs: Vec<f64> = lat.iter().flat_map(|(h, _)| h.iter().copied()).collect();
    let lows: Vec<f64> = lat.iter().flat_map(|(_, l)| l.iter().copied()).collect();
    (highs, lows)
}

/// Per-connection request count for a grid point: every point gets the
/// same total budget, so C=8 runs long enough to measure throughput
/// meaningfully (at 8 requests/conn it is a ~4 ms blip dominated by
/// thread-spawn noise) and p99.9 has real samples behind it.
fn per_conn_requests(conns: usize, total: usize) -> usize {
    (total / conns.max(1)).max(4)
}

/// Phase C: the same cache-hot request mix from `conn_grid`
/// connections, pipelined `inflight` deep, against one `transport`
/// server. The mix (16 distinct program-adaptive points) is prewarmed
/// through the wire first, so the scaling points measure the
/// transport — readiness handling, framing, flushing — rather than
/// simulation throughput. Returns one report per grid point.
fn connection_phase(
    transport: Transport,
    conn_grid: &[usize],
    total_per_point: usize,
    inflight: usize,
    window: u64,
) -> Vec<(usize, LoadReport)> {
    let server = Server::start(ServeConfig {
        transport,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr();
    let kinds: Vec<RequestKind> = (0..16)
        .map(|j| RequestKind::RunConfig {
            bench: "gzip".to_string(),
            mode: "prog".to_string(),
            cfg: Some((j * 17) % McdConfig::enumerate().len()),
            policy: None,
            window,
        })
        .collect();
    let mut warm = Client::connect(addr).expect("connect for prewarm");
    for (j, kind) in kinds.iter().enumerate() {
        let responses = warm
            .request(&Request::new(format!("warm{j}"), kind.clone()))
            .expect("prewarm request");
        assert!(
            !matches!(responses.last(), Some(Response::Error { .. })),
            "prewarm must succeed"
        );
    }
    drop(warm);
    // Each point is the median-of-3 repeats by p99: a one-core host's
    // tail latency is a noisy draw, and committing (or asserting on) a
    // single sample would make the comparison a coin flip. A point
    // counts as clean only if *every* repeat was clean.
    const REPEATS: usize = 3;
    let mut out = Vec::new();
    for &conns in conn_grid {
        let mut reports: Vec<LoadReport> = (0..REPEATS)
            .map(|rep| {
                run_load(&LoadSpec {
                    addr,
                    connections: conns,
                    inflight,
                    requests_per_conn: per_conn_requests(conns, total_per_point),
                    kinds: kinds.clone(),
                    priority: Priority::Normal,
                    deadline_ms: None,
                    id_prefix: format!("{transport:?}{conns}r{rep}"),
                })
            })
            .collect();
        let expected = conns * per_conn_requests(conns, total_per_point);
        let chosen = match reports.iter().position(|r| !r.clean(expected)) {
            // Propagate any dirty repeat so the point reads as dirty.
            Some(dirty) => reports.swap_remove(dirty),
            None => {
                reports.sort_by(|a, b| a.percentile_ms(99.0).total_cmp(&b.percentile_ms(99.0)));
                reports.swap_remove(REPEATS / 2)
            }
        };
        out.push((conns, chosen));
    }
    server.shutdown();
    out
}

/// Pulls `"key": <number>` out of flat-ish JSON text, searching after
/// the first occurrence of `anchor` (`""` = from the top). Hand-rolled
/// like `throughput --check`: the committed artifact is produced by
/// this binary, so the shapes are known and no JSON dependency is
/// needed.
fn extract_number(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let from = if anchor.is_empty() {
        0
    } else {
        text.find(anchor)? + anchor.len()
    };
    let rest = &text[from..];
    let kpos = rest.find(key)? + key.len();
    let rest = rest[kpos..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct Args {
    check: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().collect();
    let grab = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    Args {
        check: grab("--check"),
        tolerance: grab("--tolerance")
            .and_then(|t| t.parse().ok())
            .unwrap_or(0.25),
    }
}

fn main() {
    let args = parse_args();
    // Snapshot the committed artifact *before* measuring: the default
    // output path and the checked path are usually the same file, and
    // gating against a just-rewritten artifact would compare this run
    // with itself.
    let committed = args.check.as_ref().map(|path| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read committed artifact {path}: {e}"))
    });
    let window = env_u64("GALS_SERVE_BENCH_WINDOW", 3_000);
    let clients = env_u64("GALS_SERVE_BENCH_CLIENTS", 8) as usize;
    let conn_grid: Vec<usize> =
        gals_common::env::parse_list_or("GALS_SERVE_BENCH_CONNS", &[8, 64, 256]);
    let out_path = gals_common::env::var("GALS_SERVE_BENCH_OUT")
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let (serve_ms, independent_ms, simulated, total_requests, distinct) =
        batching_phase(window, clients);
    let speedup = independent_ms / serve_ms;
    let (mut highs, mut lows) = priority_phase(window, clients);
    let high_ms = median(&mut highs);
    let low_ms = median(&mut lows);
    // `median` leaves the slices sorted, which is what `percentile`
    // requires. Tail percentiles are the serving metric that matters
    // under saturation: a priority scheme that only helps the median
    // can still strand individual high-priority requests behind the
    // backlog, and p95/p99/p99.9 is where that shows.
    let (high_p50, high_p95, high_p99, high_p999) = (
        percentile(&highs, 50.0),
        percentile(&highs, 95.0),
        percentile(&highs, 99.0),
        percentile(&highs, 99.9),
    );
    let (low_p50, low_p95, low_p99, low_p999) = (
        percentile(&lows, 50.0),
        percentile(&lows, 95.0),
        percentile(&lows, 99.0),
        percentile(&lows, 99.9),
    );

    // --- Phase C: connection scaling, reactor vs threads. -------------
    const TOTAL_PER_POINT: usize = 8_192;
    const INFLIGHT: usize = 1;
    let reactor_scale = connection_phase(
        Transport::Reactor,
        &conn_grid,
        TOTAL_PER_POINT,
        INFLIGHT,
        window,
    );
    let threads_scale = connection_phase(
        Transport::Threads,
        &conn_grid,
        TOTAL_PER_POINT,
        INFLIGHT,
        window,
    );
    let expected = |conns: usize| conns * per_conn_requests(conns, TOTAL_PER_POINT);
    // The reactor must be clean at every grid point, including C_max.
    for (conns, report) in &reactor_scale {
        assert!(
            report.clean(expected(*conns)),
            "reactor must stay clean at C={conns}: {report:?}"
        );
    }
    let protocol_errors: usize = reactor_scale
        .iter()
        .chain(&threads_scale)
        .map(|(_, r)| r.protocol_errors + r.connect_failures)
        .sum();
    // The threads transport's viable ceiling: its largest clean point.
    let threads_viable = threads_scale
        .iter()
        .filter(|(conns, r)| r.clean(expected(*conns)))
        .map(|(conns, _)| *conns)
        .max()
        .expect("threads transport must be viable at some grid point");
    let threads_p99_at_viable = threads_scale
        .iter()
        .find(|(conns, _)| *conns == threads_viable)
        .map(|(_, r)| r.percentile_ms(99.0))
        .expect("viable point has a report");
    let c_min = *conn_grid.first().expect("non-empty grid");
    let c_max = *conn_grid.last().expect("non-empty grid");
    let rps_at = |scale: &[(usize, LoadReport)], c: usize| {
        scale
            .iter()
            .find(|(conns, _)| *conns == c)
            .map(|(_, r)| r.throughput_rps())
            .unwrap_or(f64::NAN)
    };
    let c8_vs_threads = rps_at(&reactor_scale, c_min) / rps_at(&threads_scale, c_min);
    let reactor_p99_at_cmax = reactor_scale
        .iter()
        .find(|(conns, _)| *conns == c_max)
        .map(|(_, r)| r.percentile_ms(99.0))
        .expect("grid has a C_max point");

    println!("gals-serve scheduler benchmark");
    println!("  clients            {clients}");
    println!("  requests           {total_requests} ({distinct} distinct configs, 2 windows)");
    println!("  window             {window} insts (and {})", window / 2);
    println!("  simulations run    {simulated}");
    println!("  batched (server)   {serve_ms:.1} ms");
    println!("  independent        {independent_ms:.1} ms");
    println!("  speedup            {speedup:.2}x");
    println!(
        "  high-pri latency   p50 {high_p50:.1} / p95 {high_p95:.1} / p99 {high_p99:.1} / \
         p99.9 {high_p999:.1} ms (saturated, 1 worker)"
    );
    println!(
        "  low-pri latency    p50 {low_p50:.1} / p95 {low_p95:.1} / p99 {low_p99:.1} / \
         p99.9 {low_p999:.1} ms"
    );
    for (label, scale) in [("reactor", &reactor_scale), ("threads", &threads_scale)] {
        for (conns, r) in scale.iter() {
            println!(
                "  {label:>7} C={conns:<4} {rps:8.1} req/s   p50 {p50:7.2} / p95 {p95:7.2} / \
                 p99 {p99:7.2} / p99.9 {p999:7.2} ms   {status}",
                rps = r.throughput_rps(),
                p50 = r.percentile_ms(50.0),
                p95 = r.percentile_ms(95.0),
                p99 = r.percentile_ms(99.0),
                p999 = r.percentile_ms(99.9),
                status = if r.clean(expected(*conns)) {
                    "clean"
                } else {
                    "DIRTY"
                },
            );
        }
    }
    println!("  reactor/threads throughput at C={c_min}: {c8_vs_threads:.2}x");
    println!(
        "  reactor p99 at C={c_max}: {reactor_p99_at_cmax:.2} ms vs threads p99 at its \
         viable C={threads_viable}: {threads_p99_at_viable:.2} ms"
    );
    assert!(
        speedup > 1.0,
        "the shared scheduler must beat independent invocations"
    );
    assert!(
        high_ms < low_ms,
        "under saturation, high priority must see lower median latency \
         ({high_ms:.1} ms vs {low_ms:.1} ms)"
    );
    assert!(
        reactor_p99_at_cmax < threads_p99_at_viable,
        "the reactor's tail at C={c_max} ({reactor_p99_at_cmax:.2} ms) must beat the threads \
         transport's tail at its viable C={threads_viable} ({threads_p99_at_viable:.2} ms)"
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"gals-mcd-serve-bench-v5\",\n");
    let _ = writeln!(json, "  \"window\": {window},");
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"requests\": {total_requests},");
    let _ = writeln!(json, "  \"distinct_configs\": {distinct},");
    let _ = writeln!(json, "  \"simulations_run\": {simulated},");
    let _ = writeln!(json, "  \"batched_ms\": {serve_ms:.1},");
    let _ = writeln!(json, "  \"independent_ms\": {independent_ms:.1},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.2},");
    let _ = writeln!(json, "  \"high_priority_median_ms\": {high_ms:.1},");
    let _ = writeln!(json, "  \"low_priority_median_ms\": {low_ms:.1},");
    let _ = writeln!(
        json,
        "  \"high_priority_latency_ms\": {{\"p50\": {high_p50:.1}, \"p95\": {high_p95:.1}, \
         \"p99\": {high_p99:.1}, \"p999\": {high_p999:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"low_priority_latency_ms\": {{\"p50\": {low_p50:.1}, \"p95\": {low_p95:.1}, \
         \"p99\": {low_p99:.1}, \"p999\": {low_p999:.1}}},"
    );
    json.push_str("  \"reactor\": {\n");
    let grid: Vec<String> = conn_grid.iter().map(ToString::to_string).collect();
    let _ = writeln!(json, "    \"conn_grid\": [{}],", grid.join(", "));
    let _ = writeln!(json, "    \"requests_per_point\": {TOTAL_PER_POINT},");
    let _ = writeln!(json, "    \"inflight\": {INFLIGHT},");
    for (label, scale) in [("reactor", &reactor_scale), ("threads", &threads_scale)] {
        let _ = writeln!(json, "    \"{label}_scaling\": [");
        for (i, (conns, r)) in scale.iter().enumerate() {
            let _ = writeln!(
                json,
                "      {{\"conns\": {conns}, \"throughput_rps\": {rps:.1}, \
                 \"p50_ms\": {p50:.3}, \"p95_ms\": {p95:.3}, \"p99_ms\": {p99:.3}, \
                 \"p999_ms\": {p999:.3}, \"protocol_errors\": {errs}, \"clean\": {clean}}}{comma}",
                rps = r.throughput_rps(),
                p50 = r.percentile_ms(50.0),
                p95 = r.percentile_ms(95.0),
                p99 = r.percentile_ms(99.0),
                p999 = r.percentile_ms(99.9),
                errs = r.protocol_errors + r.connect_failures,
                clean = r.clean(expected(*conns)),
                comma = if i + 1 == scale.len() { "" } else { "," },
            );
        }
        json.push_str("    ],\n");
    }
    let _ = writeln!(
        json,
        "    \"c{c_min}_throughput_vs_threads\": {c8_vs_threads:.3},"
    );
    let _ = writeln!(
        json,
        "    \"reactor_p99_at_c{c_max}_ms\": {reactor_p99_at_cmax:.3},"
    );
    let _ = writeln!(json, "    \"threads_largest_viable_c\": {threads_viable},");
    let _ = writeln!(
        json,
        "    \"threads_p99_at_viable_ms\": {threads_p99_at_viable:.3},"
    );
    let _ = writeln!(
        json,
        "    \"tail_advantage\": {:.3},",
        threads_p99_at_viable / reactor_p99_at_cmax
    );
    let _ = writeln!(json, "    \"protocol_errors\": {protocol_errors}");
    json.push_str("  },\n");
    json.push_str("  \"bit_identical_to_direct\": true\n}\n");
    std::fs::write(&out_path, &json).expect("write artifact");
    println!("  wrote {out_path}");

    // Perf-smoke gate against the committed artifact: ratio metrics
    // only (ratios of two same-host measurements transfer across
    // machines; absolute req/s and ms do not).
    if let Some(path) = &args.check {
        let committed = committed.expect("snapshot taken before the run");
        let mut failed = false;
        let checks = [
            (
                "speedup",
                speedup,
                extract_number(&committed, "", "\"speedup\""),
            ),
            (
                "reactor.c_min_throughput_vs_threads",
                c8_vs_threads,
                extract_number(
                    &committed,
                    "\"reactor\"",
                    &format!("\"c{c_min}_throughput_vs_threads\""),
                ),
            ),
            (
                "reactor.tail_advantage",
                threads_p99_at_viable / reactor_p99_at_cmax,
                extract_number(&committed, "\"reactor\"", "\"tail_advantage\""),
            ),
        ];
        for (name, measured, committed_val) in checks {
            let Some(want) = committed_val else {
                eprintln!("serve-smoke: {name} missing from {path} (schema v5 required)");
                failed = true;
                continue;
            };
            let floor = want * (1.0 - args.tolerance);
            if measured < floor {
                eprintln!(
                    "serve-smoke FAIL: {name} measured {measured:.3} < floor {floor:.3} \
                     (committed {want:.3}, tolerance {:.0}%)",
                    args.tolerance * 100.0
                );
                failed = true;
            } else {
                eprintln!(
                    "serve-smoke ok: {name} measured {measured:.3} >= floor {floor:.3} \
                     (committed {want:.3})"
                );
            }
        }
        // Hard invariants of the committed artifact itself.
        if extract_number(&committed, "\"reactor\"", "\"protocol_errors\"") != Some(0.0) {
            eprintln!("serve-smoke FAIL: committed artifact records protocol errors");
            failed = true;
        }
        assert!(!failed, "serve-smoke gate failed against {path}");
        eprintln!("serve-smoke: all gates passed against {path}");
    }
}
