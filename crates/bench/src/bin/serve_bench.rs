//! `gals-serve` batching benchmark: drives a mixed request stream from
//! many concurrent clients against an in-process server and compares it
//! with the same stream executed as independent `Explorer`-style
//! invocations (a fresh engine and a cold private cache per request —
//! what N scripts calling the library would do). Also asserts the
//! determinism invariant: every served runtime is bit-identical to the
//! same configuration run directly through the simulator.
//!
//! Writes `BENCH_serve.json`. Knobs: `GALS_SERVE_BENCH_WINDOW`
//! (instructions per run, default 3,000), `GALS_SERVE_BENCH_CLIENTS`
//! (default 8), `GALS_SERVE_BENCH_OUT` (default `BENCH_serve.json`).

use std::fmt::Write as _;
use std::time::Instant;

use gals_core::{ControlPolicy, McdConfig, Simulator, SyncConfig};
use gals_explore::{MeasureItem, ResultCache, SweepEngine};
use gals_serve::{Client, Request, RequestKind, Response, ServeConfig, Server};
use gals_workloads::suite;

/// One logical unit of the mixed stream, in both its wire form and its
/// direct (library) form.
#[derive(Clone)]
struct Unit {
    kind: RequestKind,
    item: MeasureItem,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A pool of distinct work units mixing machine styles, benchmarks, and
/// policies — the "mixed request stream" clients draw from (with heavy
/// overlap, which is what the batching layer exists to exploit).
fn unit_pool(window: u64) -> Vec<Unit> {
    let benches = ["adpcm_encode", "gzip", "apsi", "crafty", "art"];
    let mut units = Vec::new();
    for (bi, bench) in benches.iter().enumerate() {
        let spec = suite::by_name(bench).expect("benchmark in suite");
        // Phase-adaptive under two policies.
        for policy in [ControlPolicy::PaperArgmin, ControlPolicy::Static] {
            units.push(Unit {
                kind: RequestKind::RunConfig {
                    bench: bench.to_string(),
                    mode: "phase".to_string(),
                    cfg: None,
                    policy: Some(policy),
                    window,
                },
                item: MeasureItem::phase(spec.clone(), policy),
            });
        }
        // One program-adaptive and one synchronous point per benchmark,
        // spread across the spaces.
        let prog_cfgs = McdConfig::enumerate();
        let prog_idx = (bi * 61) % prog_cfgs.len();
        units.push(Unit {
            kind: RequestKind::RunConfig {
                bench: bench.to_string(),
                mode: "prog".to_string(),
                cfg: Some(prog_idx),
                policy: None,
                window,
            },
            item: MeasureItem::program(spec.clone(), prog_cfgs[prog_idx]),
        });
        let sync_cfgs = SyncConfig::enumerate();
        let sync_idx = (bi * 197) % sync_cfgs.len();
        units.push(Unit {
            kind: RequestKind::RunConfig {
                bench: bench.to_string(),
                mode: "sync".to_string(),
                cfg: Some(sync_idx),
                policy: None,
                window,
            },
            item: MeasureItem::sync(spec.clone(), sync_cfgs[sync_idx]),
        });
    }
    units
}

fn main() {
    let window = env_u64("GALS_SERVE_BENCH_WINDOW", 3_000);
    let clients = env_u64("GALS_SERVE_BENCH_CLIENTS", 8) as usize;
    let out_path =
        std::env::var("GALS_SERVE_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());

    let pool = unit_pool(window);
    // Each client walks the pool from a different offset: every unit is
    // requested by several clients (the multi-tenant overlap case).
    let per_client = pool.len();
    let streams: Vec<Vec<Unit>> = (0..clients)
        .map(|c| {
            (0..per_client)
                .map(|j| pool[(c * 3 + j) % pool.len()].clone())
                .collect()
        })
        .collect();
    let total_requests = clients * per_client;

    // --- Batched, through the server. --------------------------------
    let server = Server::start(ServeConfig::default()).expect("start server");
    let addr = server.local_addr();
    let t0 = Instant::now();
    let served: Vec<Vec<(String, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(c, stream)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut results = Vec::new();
                    for (j, unit) in stream.iter().enumerate() {
                        let responses = client
                            .request(&Request {
                                id: format!("c{c}-{j}"),
                                kind: unit.kind.clone(),
                            })
                            .expect("request");
                        for resp in responses {
                            if let Response::Result {
                                key, runtime_ns, ..
                            } = resp
                            {
                                results.push((key, runtime_ns));
                            }
                        }
                    }
                    results
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let serve_ms = t0.elapsed().as_secs_f64() * 1e3;
    let simulated = server.simulated_count();
    server.shutdown();

    // --- The same stream as independent library invocations. ---------
    let t1 = Instant::now();
    let mut independent: Vec<f64> = Vec::with_capacity(total_requests);
    for stream in &streams {
        for unit in stream {
            // A fresh engine with a cold private cache per request:
            // nothing shared, nothing batched.
            let engine = SweepEngine::new(ResultCache::in_memory());
            let ns = engine.measure(std::slice::from_ref(&unit.item), window)[0];
            independent.push(ns);
        }
    }
    let independent_ms = t1.elapsed().as_secs_f64() * 1e3;

    // --- Determinism: served ≡ direct. -------------------------------
    let mut checked = 0usize;
    for unit in &pool {
        let direct = Simulator::new(unit.item.machine.clone())
            .run(&mut unit.item.spec.stream(), window)
            .runtime_ns();
        // Compare against every served occurrence of this unit.
        let spec_name = unit.item.spec.name();
        for (c, stream) in streams.iter().enumerate() {
            for (j, u) in stream.iter().enumerate() {
                if u.item.config_key == unit.item.config_key
                    && u.item.spec.name() == spec_name
                    && u.item.mode == unit.item.mode
                {
                    let (_, ns) = &served[c][j];
                    assert_eq!(
                        ns.to_bits(),
                        direct.to_bits(),
                        "served result for {spec_name}/{} must be bit-identical",
                        unit.item.config_key
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= total_requests, "every request verified");

    let speedup = independent_ms / serve_ms;
    println!("gals-serve batching benchmark");
    println!("  clients            {clients}");
    println!(
        "  requests           {total_requests} ({} distinct configs)",
        pool.len()
    );
    println!("  window             {window} insts");
    println!("  simulations run    {simulated}");
    println!("  batched (server)   {serve_ms:.1} ms");
    println!("  independent        {independent_ms:.1} ms");
    println!("  speedup            {speedup:.2}x");
    assert!(
        speedup > 1.0,
        "the batched server must beat independent invocations"
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"gals-mcd-serve-bench-v1\",\n");
    let _ = writeln!(json, "  \"window\": {window},");
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"requests\": {total_requests},");
    let _ = writeln!(json, "  \"distinct_configs\": {},", pool.len());
    let _ = writeln!(json, "  \"simulations_run\": {simulated},");
    let _ = writeln!(json, "  \"batched_ms\": {serve_ms:.1},");
    let _ = writeln!(json, "  \"independent_ms\": {independent_ms:.1},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.2},");
    json.push_str("  \"bit_identical_to_direct\": true\n}\n");
    std::fs::write(&out_path, json).expect("write artifact");
    println!("  wrote {out_path}");
}
