//! Command-line client for a running `gals-serve` server.
//!
//! ```text
//! serve_client --addr 127.0.0.1:7411 --op run_config --bench gzip \
//!     --mode phase --policy argmin --window 2000
//! serve_client --addr 127.0.0.1:7411 --op sweep --bench art --mode prog \
//!     --priority low --window 5000
//! serve_client --addr 127.0.0.1:7411 --op run_config --bench art \
//!     --mode prog --cfg 17 --priority high --deadline-ms 250
//! serve_client --addr 127.0.0.1:7411 --op status
//! ```
//!
//! Per-request scheduling flags (`--priority low|normal|high`,
//! `--deadline-ms N`, `--window N`) let mixed streams be driven by
//! hand against one server. Prints one line per streamed frame
//! (tab-separated key / runtime / cache flag, or `key\texpired`) and
//! exits non-zero on protocol errors.

use std::process::ExitCode;

use gals_common::fxmap::FxHashMap;
use gals_serve::{Client, Priority, Request, RequestKind, Response};

fn parse_args() -> Result<(String, Request), String> {
    let mut flags: FxHashMap<String, String> = FxHashMap::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {flag:?}"))?;
        let value = args
            .next()
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value);
    }
    let addr = flags
        .remove("addr")
        .unwrap_or_else(|| "127.0.0.1:7411".to_string());
    let id = flags.remove("id").unwrap_or_else(|| "cli".to_string());
    let op = flags.remove("op").ok_or("missing --op")?;
    let window = match flags.remove("window") {
        None => 0,
        Some(w) => w
            .parse::<u64>()
            .map_err(|_| "--window must be an integer")?,
    };
    let priority = match flags.remove("priority") {
        None => Priority::Normal,
        Some(p) => p.parse::<Priority>()?,
    };
    let deadline_ms = match flags.remove("deadline-ms") {
        None => None,
        Some(d) => Some(
            d.parse::<u64>()
                .map_err(|_| "--deadline-ms must be an integer")?,
        ),
    };
    let bench = |flags: &mut FxHashMap<String, String>| {
        flags.remove("bench").ok_or("missing --bench".to_string())
    };
    let kind = match op.as_str() {
        "run_config" => RequestKind::RunConfig {
            bench: bench(&mut flags)?,
            mode: flags.remove("mode").ok_or("missing --mode")?,
            cfg: match flags.remove("cfg") {
                None => None,
                Some(c) => Some(c.parse().map_err(|_| "--cfg must be an integer")?),
            },
            policy: match flags.remove("policy") {
                None => None,
                Some(p) => Some(p.parse().map_err(|e| format!("{e}"))?),
            },
            window,
        },
        "sweep" => RequestKind::Sweep {
            bench: bench(&mut flags)?,
            mode: flags.remove("mode").ok_or("missing --mode")?,
            window,
        },
        "policy_compare" => RequestKind::PolicyCompare {
            bench: bench(&mut flags)?,
            policies: flags
                .remove("policies")
                .unwrap_or_else(|| "argmin,hyst3,pi,static".to_string())
                .split(',')
                .map(|p| p.trim().parse().map_err(|e| format!("{e}")))
                .collect::<Result<Vec<_>, _>>()?,
            window,
        },
        "status" => RequestKind::Status,
        other => return Err(format!("unknown --op {other:?}")),
    };
    if let Some(stray) = flags.keys().next() {
        return Err(format!("unknown flag --{stray}"));
    }
    Ok((
        addr,
        Request {
            id,
            priority,
            deadline_ms,
            kind,
        },
    ))
}

fn main() -> ExitCode {
    let (addr, request) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("serve_client: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve_client: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let responses = match client.request(&request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_client: request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for resp in &responses {
        match resp {
            Response::Partial {
                key,
                runtime_ns,
                cached,
                ..
            } => println!(
                "{key}\t{runtime_ns:.3}\t{}",
                if *cached { "cached" } else { "simulated" }
            ),
            Response::Expired { key, .. } => println!("{key}\texpired"),
            Response::Done {
                results, expired, ..
            } => println!("done\t{results} results\t{expired} expired"),
            Response::Status { counters, .. } => {
                for (k, v) in counters {
                    println!("{k}\t{v}");
                }
            }
            Response::Error { message, .. } => {
                eprintln!("serve_client: server error: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
