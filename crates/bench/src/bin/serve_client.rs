//! Command-line client for a running `gals-serve` server.
//!
//! ```text
//! serve_client --addr 127.0.0.1:7411 --op run_config --bench gzip \
//!     --mode phase --policy argmin --window 2000
//! serve_client --addr 127.0.0.1:7411 --op sweep --bench art --mode prog \
//!     --priority low --window 5000
//! serve_client --addr 127.0.0.1:7411 --op run_config --bench art \
//!     --mode prog --cfg 17 --priority high --deadline-ms 250
//! serve_client --addr 127.0.0.1:7411 --op status
//! ```
//!
//! Per-request scheduling flags (`--priority low|normal|high`,
//! `--deadline-ms N`, `--window N`) let mixed streams be driven by
//! hand against one server. Prints one line per streamed frame
//! (tab-separated key / runtime / cache flag, or `key\texpired`) and
//! exits non-zero on protocol errors.
//!
//! # Load-generator mode
//!
//! `--connections N` switches to connection-scale load generation: N
//! concurrent connections each issue `--requests R` copies of the
//! request (unique ids), keeping up to `--inflight K` pipelined per
//! connection, and the summary reports throughput plus
//! p50/p95/p99/p99.9 send→done latency:
//!
//! ```text
//! serve_client --addr 127.0.0.1:7411 --op run_config --bench gzip \
//!     --mode prog --cfg 7 --window 2000 \
//!     --connections 64 --inflight 4 --requests 8
//! ```
//!
//! Exit is non-zero if any connection fails to open, any request loses
//! its `done`, or any frame violates the protocol — so CI can use a
//! load run as a smoke gate.

use std::net::ToSocketAddrs;
use std::process::ExitCode;

use gals_bench::loadgen::{run_load, LoadSpec};
use gals_common::fxmap::FxHashMap;
use gals_serve::{Client, Priority, Request, RequestKind, Response};

/// `--connections N --inflight K --requests R`, when in load-gen mode.
struct LoadFlags {
    connections: usize,
    inflight: usize,
    requests: usize,
}

fn parse_args() -> Result<(String, Request, Option<LoadFlags>), String> {
    let mut flags: FxHashMap<String, String> = FxHashMap::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {flag:?}"))?;
        let value = args
            .next()
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value);
    }
    let addr = flags
        .remove("addr")
        .unwrap_or_else(|| "127.0.0.1:7411".to_string());
    let id = flags.remove("id").unwrap_or_else(|| "cli".to_string());
    let op = flags.remove("op").ok_or("missing --op")?;
    let window = match flags.remove("window") {
        None => 0,
        Some(w) => w
            .parse::<u64>()
            .map_err(|_| "--window must be an integer")?,
    };
    let priority = match flags.remove("priority") {
        None => Priority::Normal,
        Some(p) => p.parse::<Priority>()?,
    };
    let deadline_ms = match flags.remove("deadline-ms") {
        None => None,
        Some(d) => Some(
            d.parse::<u64>()
                .map_err(|_| "--deadline-ms must be an integer")?,
        ),
    };
    let count = |flags: &mut FxHashMap<String, String>, key: &str, default: usize| match flags
        .remove(key)
    {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("--{key} must be a positive integer")),
    };
    let load = match flags.remove("connections") {
        None => {
            if flags.contains_key("inflight") || flags.contains_key("requests") {
                return Err("--inflight/--requests need --connections".to_string());
            }
            None
        }
        Some(c) => {
            let connections = c
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or("--connections must be a positive integer")?;
            Some(LoadFlags {
                connections,
                inflight: count(&mut flags, "inflight", 1)?,
                requests: count(&mut flags, "requests", 8)?,
            })
        }
    };
    let bench = |flags: &mut FxHashMap<String, String>| {
        flags.remove("bench").ok_or("missing --bench".to_string())
    };
    let kind = match op.as_str() {
        "run_config" => RequestKind::RunConfig {
            bench: bench(&mut flags)?,
            mode: flags.remove("mode").ok_or("missing --mode")?,
            cfg: match flags.remove("cfg") {
                None => None,
                Some(c) => Some(c.parse().map_err(|_| "--cfg must be an integer")?),
            },
            policy: match flags.remove("policy") {
                None => None,
                Some(p) => Some(p.parse().map_err(|e| format!("{e}"))?),
            },
            window,
        },
        "sweep" => RequestKind::Sweep {
            bench: bench(&mut flags)?,
            mode: flags.remove("mode").ok_or("missing --mode")?,
            window,
        },
        "policy_compare" => RequestKind::PolicyCompare {
            bench: bench(&mut flags)?,
            policies: flags
                .remove("policies")
                .unwrap_or_else(|| "argmin,hyst3,pi,static".to_string())
                .split(',')
                .map(|p| p.trim().parse().map_err(|e| format!("{e}")))
                .collect::<Result<Vec<_>, _>>()?,
            window,
        },
        "status" => RequestKind::Status,
        other => return Err(format!("unknown --op {other:?}")),
    };
    if let Some(stray) = flags.keys().next() {
        return Err(format!("unknown flag --{stray}"));
    }
    Ok((
        addr,
        Request {
            id,
            priority,
            deadline_ms,
            kind,
        },
        load,
    ))
}

/// Connection-scale load generation (`--connections`): the parsed
/// request becomes the template every connection replays.
fn run_load_mode(addr: &str, request: Request, load: &LoadFlags) -> ExitCode {
    if matches!(request.kind, RequestKind::Status) {
        eprintln!("serve_client: --connections needs a work request, not --op status");
        return ExitCode::FAILURE;
    }
    let Some(sock_addr) = addr.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
        eprintln!("serve_client: cannot resolve {addr}");
        return ExitCode::FAILURE;
    };
    let expected = load.connections * load.requests;
    let report = run_load(&LoadSpec {
        addr: sock_addr,
        connections: load.connections,
        inflight: load.inflight,
        requests_per_conn: load.requests,
        kinds: vec![request.kind],
        priority: request.priority,
        deadline_ms: request.deadline_ms,
        id_prefix: request.id,
    });
    println!(
        "connections\t{}\tinflight\t{}\trequests\t{expected}",
        load.connections, load.inflight
    );
    println!(
        "completed\t{}\tframes\t{}\twall_s\t{:.3}\tthroughput_rps\t{:.1}",
        report.completed,
        report.frames,
        report.wall_s,
        report.throughput_rps()
    );
    println!(
        "latency_ms\tp50\t{:.2}\tp95\t{:.2}\tp99\t{:.2}\tp99.9\t{:.2}",
        report.percentile_ms(50.0),
        report.percentile_ms(95.0),
        report.percentile_ms(99.0),
        report.percentile_ms(99.9)
    );
    if !report.clean(expected) {
        eprintln!(
            "serve_client: load run failed: {} protocol errors, {} connect failures, \
             {}/{expected} completed",
            report.protocol_errors, report.connect_failures, report.completed
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let (addr, request, load) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("serve_client: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(load) = load {
        return run_load_mode(&addr, request, &load);
    }
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve_client: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let responses = match client.request(&request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_client: request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for resp in &responses {
        match resp {
            Response::Partial {
                key,
                runtime_ns,
                cached,
                ..
            } => println!(
                "{key}\t{runtime_ns:.3}\t{}",
                if *cached { "cached" } else { "simulated" }
            ),
            Response::Expired { key, .. } => println!("{key}\texpired"),
            Response::Done {
                results, expired, ..
            } => println!("done\t{results} results\t{expired} expired"),
            Response::Status { counters, .. } => {
                for (k, v) in counters {
                    println!("{k}\t{v}");
                }
            }
            Response::Error { message, .. } => {
                eprintln!("serve_client: server error: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
