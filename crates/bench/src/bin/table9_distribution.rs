//! Table 9: distribution of the best Program-Adaptive configurations.
fn main() {
    let mut ex = gals_explore::Explorer::from_env().expect("cache");
    let suite = gals_workloads::suite::all();
    let choices = ex.program_sweep(&suite).expect("program sweep");
    gals_bench::artifacts::table9(&choices);
}
