//! Adaptation-policy comparison: runs the Phase-Adaptive machine under
//! each selectable `ControlPolicy` over a benchmark subset and reports
//! per-policy geometric-mean runtime, as a table and as a JSON artifact.
//!
//! ```text
//! cargo run --release -p gals-bench --bin policy_compare -- \
//!     --policies argmin,hyst3,pi,static --out target/policy_compare.json
//! ```
//!
//! Knobs: `GALS_MCD_POLICY_WINDOW` (instructions per run, default
//! 40,000), `GALS_MCD_POLICY_BENCHES` (comma-separated names, default a
//! six-benchmark subset covering cache-phased, ILP-phased, and
//! memory-bound behavior), plus the usual `GALS_MCD_CACHE`.

use std::fmt::Write as _;

use gals_bench::print_table;
use gals_explore::{ControlPolicy, Explorer, PolicyOutcome, ResultCache};
use gals_workloads::{suite, BenchmarkSpec};

const DEFAULT_BENCHES: [&str; 6] = ["adpcm_encode", "gzip", "apsi", "em3d", "crafty", "art"];

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_policies(spec: &str) -> Vec<ControlPolicy> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse::<ControlPolicy>()
                .unwrap_or_else(|e| panic!("--policies: {e}"))
        })
        .collect()
}

fn bench_subset() -> Vec<BenchmarkSpec> {
    let names = gals_common::env::var("GALS_MCD_POLICY_BENCHES")
        .map(|v| v.split(',').map(str::to_string).collect::<Vec<_>>())
        .unwrap_or_else(|| DEFAULT_BENCHES.iter().map(|s| s.to_string()).collect());
    names
        .iter()
        .map(|n| {
            suite::by_name(n.trim()).unwrap_or_else(|| panic!("unknown benchmark {n:?} in subset"))
        })
        .collect()
}

fn artifact_json(window: u64, subset: &[BenchmarkSpec], outcomes: &[PolicyOutcome]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"gals-mcd-policy-compare-v1\",\n");
    let _ = writeln!(json, "  \"window\": {window},");
    let names: Vec<String> = subset.iter().map(|s| format!("\"{}\"", s.name())).collect();
    let _ = writeln!(json, "  \"benchmarks\": [{}],", names.join(", "));
    json.push_str("  \"policies\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"key\": \"{}\", \"name\": \"{}\", \"geomean_ns\": {:.3}, \"per_benchmark\": {{",
            o.policy.key(),
            o.policy,
            o.geomean_ns
        );
        // Unusable runtimes (a skipped benchmark's NaN/0 marker) would
        // not be valid JSON numbers; they are reported in "skipped"
        // instead of inlined here.
        let per: Vec<String> = o
            .per_benchmark
            .iter()
            .filter(|(_, ns)| ns.is_finite() && *ns > 0.0)
            .map(|(b, ns)| format!("\"{b}\": {ns:.3}"))
            .collect();
        let _ = write!(json, "{}}}", per.join(", "));
        if !o.skipped.is_empty() {
            let skipped: Vec<String> = o.skipped.iter().map(|s| format!("\"{}\"", s.key)).collect();
            let _ = write!(json, ", \"skipped\": [{}]", skipped.join(", "));
        }
        json.push('}');
        json.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let window: u64 = gals_common::env::parse_env_or("GALS_MCD_POLICY_WINDOW", 40_000);
    let policies = arg_value(&args, "--policies")
        .map(|spec| parse_policies(&spec))
        .unwrap_or_else(|| ControlPolicy::BUILTIN.to_vec());
    let out_path =
        arg_value(&args, "--out").unwrap_or_else(|| "target/policy_compare.json".to_string());

    let subset = bench_subset();
    let cache_path = gals_common::env::var("GALS_MCD_CACHE")
        .unwrap_or_else(|| "target/gals-sweep-cache.json".to_string());
    let cache = ResultCache::open(&cache_path).expect("open result cache");
    let mut ex = Explorer::with_cache(window, window, cache);

    println!(
        "policy comparison: {} policies x {} benchmarks, {window} instructions each",
        policies.len(),
        subset.len()
    );
    let outcomes = ex.policy_compare(&subset, &policies).expect("policy sweep");

    let baseline = outcomes
        .iter()
        .find(|o| o.policy == ControlPolicy::PaperArgmin)
        .map(|o| o.geomean_ns);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            let vs = match baseline {
                Some(base) if base > 0.0 => {
                    format!("{:+.2}%", (o.geomean_ns / base - 1.0) * 100.0)
                }
                _ => "-".to_string(),
            };
            vec![
                o.policy.to_string(),
                format!("{:.1}", o.geomean_ns),
                vs,
                o.policy.key(),
            ]
        })
        .collect();
    print_table(
        "Adaptation-policy comparison (geomean runtime; lower is better)",
        &["policy", "geomean ns", "vs paper-argmin", "key"],
        &rows,
    );

    let json = artifact_json(window, &subset, &outcomes);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write policy artifact");
    println!("\nwrote {out_path}");
}
