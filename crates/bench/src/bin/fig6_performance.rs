//! Figure 6: Program- and Phase-Adaptive improvement over the best
//! fully synchronous machine, per benchmark and overall.
//!
//! Uses the cached sweeps (prime them with `sweep_sync` /
//! `sweep_program_adaptive`, or let this binary run them).
fn main() {
    let mut ex = gals_explore::Explorer::from_env().expect("cache");
    let suite = gals_workloads::suite::all();
    let _ = gals_bench::artifacts::fig6(&mut ex, &suite);
}
