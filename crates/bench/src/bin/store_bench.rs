//! Durability benchmark for the WAL-backed result store.
//!
//! Replays a checked-in, versioned workload definition (flat JSON under
//! `workloads/store/`, parsed with `gals_explore::json` — a Zipf-hot
//! config mix over a small hot set, a long tail of cold configs,
//! concurrent writer threads, and a catch-up reader probing the hot set
//! while the writers run) against each WAL sync mode (`always`,
//! `batch:N`, `none`), then simulates a crash (the final checkpoint is
//! skipped, exactly what `kill -9` leaves behind) and recovers.
//!
//! Reported per mode: put latency p50/p95/p99/p99.9 (µs), put
//! throughput, WAL bytes at crash, acknowledged (synced) record count,
//! replayed record count, WAL replay time — and the number of
//! acknowledged records lost in recovery, which must be **zero** in
//! every mode; the process exits nonzero otherwise. The run both
//! *measures* the latency cost of each durability level and *audits*
//! the durability claim itself, percentile-first, from a reproducible
//! seeded workload.
//!
//! Writes `BENCH_store.json` (schema `gals-mcd-store-bench-v1`).
//! Flags: `--workload <path>` (default `workloads/store/default.json`),
//! `--out <path>` (default `BENCH_store.json`), `--check <committed>`
//! gates the committed artifact (`recovery_lost_acknowledged == 0`,
//! p99.9 present per mode) in addition to this run's own zero-loss
//! assertion.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use gals_bench::loadgen::percentile;
use gals_common::fxmap::{FxHashMap, FxHashSet};
use gals_common::SplitMix64;
use gals_explore::json::parse_flat_object;
use gals_explore::wal::SyncPolicy;
use gals_explore::{wal_path_of, CacheKey, ResultCache};

/// A parsed workload definition (see `workloads/store/*.json`).
#[derive(Debug, Clone)]
struct Workload {
    name: String,
    writers: usize,
    puts_per_writer: usize,
    hot_keys: usize,
    hot_fraction: f64,
    zipf_exponent: f64,
    checkpoint_batch: usize,
    batch_n: u64,
    catchup_reader: bool,
    seed: u64,
}

impl Workload {
    fn load(path: &str) -> Workload {
        let text = fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read workload definition {path}: {e}"));
        let fields = parse_flat_object(&text)
            .unwrap_or_else(|| panic!("workload {path} is not a flat JSON object"));
        let get_str = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_str().map(str::to_string))
                .unwrap_or_else(|| panic!("workload {path}: missing string field {key:?}"))
        };
        let get_num = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_num())
                .unwrap_or_else(|| panic!("workload {path}: missing numeric field {key:?}"))
        };
        let schema = get_str("schema");
        assert_eq!(
            schema, "gals-mcd-store-workload-v1",
            "workload {path}: unsupported schema {schema:?}"
        );
        Workload {
            name: get_str("name"),
            writers: get_num("writers") as usize,
            puts_per_writer: get_num("puts_per_writer") as usize,
            hot_keys: (get_num("hot_keys") as usize).max(1),
            hot_fraction: get_num("hot_fraction"),
            zipf_exponent: get_num("zipf_exponent"),
            checkpoint_batch: get_num("checkpoint_batch") as usize,
            batch_n: (get_num("batch_n") as u64).max(1),
            catchup_reader: get_num("catchup_reader") != 0.0,
            seed: get_num("seed") as u64,
        }
    }
}

/// Zipf sampler over ranks `0..n`: rank r drawn with probability
/// proportional to `1/(r+1)^s`, via a precomputed cumulative table.
#[derive(Debug, Clone)]
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64() * self.cumulative.last().copied().unwrap_or(1.0);
        self.cumulative.partition_point(|&c| c < u)
    }
}

fn hot_key(rank: usize) -> CacheKey {
    CacheKey::new("hot", "store", &format!("h{rank:04}"), 10_000)
}

/// Outcome of one sync mode's run.
struct ModeOutcome {
    policy: String,
    puts: usize,
    wall_s: f64,
    /// Sorted per-put latencies, µs.
    latencies_us: Vec<f64>,
    acknowledged: usize,
    wal_bytes_at_crash: u64,
    checkpoint_entries: usize,
    replayed_records: usize,
    replay_ms: f64,
    lost_acknowledged: usize,
    reader_probes: usize,
    reader_hits: usize,
}

/// Runs the workload under one sync policy, crashes, recovers, audits.
fn run_mode(w: &Workload, policy: SyncPolicy, dir: &PathBuf) -> ModeOutcome {
    let _ = fs::remove_dir_all(dir);
    let path = dir.join("cache.json");
    let cache = ResultCache::open_with_policy(&path, policy).expect("open store");
    let zipf = Zipf::new(w.hot_keys, w.zipf_exponent);
    let stop = AtomicBool::new(false);
    let probes = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);

    let (logs, latencies, wall_s) = std::thread::scope(|scope| {
        let cache = &cache;
        let zipf = &zipf;
        let (stop, probes, hits) = (&stop, &probes, &hits);
        // The catch-up reader starts against an empty (or cold) store
        // and converges on the writers' hot set while they are still
        // appending — the read path must stay correct mid-checkpoint.
        let reader = w.catchup_reader.then(|| {
            scope.spawn(move || {
                let mut rng = SplitMix64::new(w.seed ^ 0x5EED_4EAD);
                while !stop.load(Ordering::Relaxed) {
                    let key = hot_key(zipf.sample(&mut rng));
                    probes.fetch_add(1, Ordering::Relaxed);
                    if cache.get(&key).is_some() {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
            })
        });
        let t0 = Instant::now();
        let handles: Vec<_> = (0..w.writers)
            .map(|wr| {
                scope.spawn(move || {
                    let mut rng = SplitMix64::new(w.seed.wrapping_add(wr as u64 * 0x9E37));
                    let mut log = Vec::with_capacity(w.puts_per_writer);
                    let mut lat = Vec::with_capacity(w.puts_per_writer);
                    for i in 0..w.puts_per_writer {
                        let key = if rng.chance(w.hot_fraction) {
                            hot_key(zipf.sample(&mut rng))
                        } else {
                            // Long tail: a fresh cold config per miss.
                            CacheKey::new("cold", "store", &format!("w{wr}-c{i:06}"), 10_000)
                        };
                        let value = (wr * w.puts_per_writer + i) as f64 * 1.000_001 + 0.333;
                        let t = Instant::now();
                        let seq = cache.put(key.clone(), value);
                        lat.push(t.elapsed().as_secs_f64() * 1e6);
                        log.push((seq, key, value));
                        cache.maybe_save_batched(w.checkpoint_batch);
                    }
                    (log, lat)
                })
            })
            .collect();
        let mut logs = Vec::new();
        let mut latencies = Vec::new();
        for h in handles {
            let (log, lat) = h.join().expect("writer thread");
            logs.push(log);
            latencies.extend(lat);
        }
        let wall_s = t0.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        if let Some(r) = reader {
            r.join().expect("reader thread");
        }
        (logs, latencies, wall_s)
    });

    // What did the store acknowledge as durable before the "crash"?
    let durable = cache.durable_seq();
    let acked: Vec<(CacheKey, f64)> = logs
        .iter()
        .flatten()
        .filter(|(seq, ..)| *seq <= durable)
        .map(|(_, k, v)| (k.clone(), *v))
        .collect();
    let wal_bytes_at_crash = fs::metadata(wal_path_of(&path))
        .map(|m| m.len())
        .unwrap_or(0);
    // Crash: leak the cache so the Drop checkpoint never runs — on-disk
    // state is exactly what SIGKILL would leave.
    std::mem::forget(cache);

    let t0 = Instant::now();
    let recovered = ResultCache::open_with_policy(&path, policy).expect("recover store");
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = recovered.recovery().clone();
    // The durability audit. Hot keys are overwritten by racing writers,
    // so the recovered value of such a key is whichever racing put
    // replay lands on — any of them is correct. What must hold: a key
    // with at least one acknowledged write is present after recovery,
    // and its value is bit-exactly one that was actually put to it
    // (never a torn/garbage value, never silently dropped).
    let mut written: FxHashMap<&CacheKey, Vec<u64>> = FxHashMap::default();
    for (_, key, value) in logs.iter().flatten() {
        written.entry(key).or_default().push(value.to_bits());
    }
    let acked_keys: FxHashSet<&CacheKey> = acked.iter().map(|(k, _)| k).collect();
    let mut lost = 0usize;
    for key in acked_keys {
        match recovered.get(key).map(f64::to_bits) {
            Some(bits) if written[key].contains(&bits) => {}
            _ => lost += 1,
        }
    }
    drop(recovered);

    let mut latencies_us = latencies;
    latencies_us.sort_by(f64::total_cmp);
    ModeOutcome {
        policy: policy.to_string(),
        puts: w.writers * w.puts_per_writer,
        wall_s,
        latencies_us,
        acknowledged: acked.len(),
        wal_bytes_at_crash,
        checkpoint_entries: report.checkpoint_entries,
        replayed_records: report.wal_records_replayed,
        replay_ms,
        lost_acknowledged: lost,
        reader_probes: probes.load(Ordering::Relaxed),
        reader_hits: hits.load(Ordering::Relaxed),
    }
}

fn extract_number(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let from = if anchor.is_empty() {
        0
    } else {
        text.find(anchor)? + anchor.len()
    };
    let rest = &text[from..];
    let kpos = rest.find(key)? + key.len();
    let rest = rest[kpos..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct Args {
    workload: String,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().collect();
    let grab = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    Args {
        workload: grab("--workload").unwrap_or_else(|| "workloads/store/default.json".to_string()),
        out: grab("--out").unwrap_or_else(|| "BENCH_store.json".to_string()),
        check: grab("--check"),
    }
}

fn main() {
    let args = parse_args();
    // Snapshot the committed artifact *before* writing ours: the output
    // path and the checked path may be the same file.
    let committed = args.check.as_ref().map(|path| {
        fs::read_to_string(path).unwrap_or_else(|e| panic!("read committed artifact {path}: {e}"))
    });
    let w = Workload::load(&args.workload);
    let modes = [
        SyncPolicy::Always,
        SyncPolicy::Batch(w.batch_n),
        SyncPolicy::None,
    ];

    println!("gals-mcd durable store benchmark");
    println!(
        "  workload           {} ({} writers x {} puts, {} hot keys, zipf s={}, \
         hot fraction {:.0}%)",
        w.name,
        w.writers,
        w.puts_per_writer,
        w.hot_keys,
        w.zipf_exponent,
        w.hot_fraction * 100.0
    );
    let mut outcomes = Vec::new();
    for policy in modes {
        let dir = std::env::temp_dir().join(format!(
            "gals-store-bench-{}",
            policy.to_string().replace(':', "-")
        ));
        let o = run_mode(&w, policy, &dir);
        let _ = fs::remove_dir_all(&dir);
        println!(
            "  {:<9} {:9.0} puts/s   put µs p50 {:7.2} / p95 {:7.2} / p99 {:7.2} / \
             p99.9 {:8.2}   acked {:>6}   replay {:6.1} ms ({} ckpt + {} wal)   lost {}",
            o.policy,
            o.puts as f64 / o.wall_s,
            percentile(&o.latencies_us, 50.0),
            percentile(&o.latencies_us, 95.0),
            percentile(&o.latencies_us, 99.0),
            percentile(&o.latencies_us, 99.9),
            o.acknowledged,
            o.replay_ms,
            o.checkpoint_entries,
            o.replayed_records,
            o.lost_acknowledged,
        );
        outcomes.push(o);
    }

    let total_lost: usize = outcomes.iter().map(|o| o.lost_acknowledged).sum();
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"gals-mcd-store-bench-v1\",\n");
    let _ = writeln!(json, "  \"workload\": \"{}\",", w.name);
    let _ = writeln!(
        json,
        "  \"workload_schema\": \"gals-mcd-store-workload-v1\","
    );
    let _ = writeln!(json, "  \"writers\": {},", w.writers);
    let _ = writeln!(json, "  \"puts_per_writer\": {},", w.puts_per_writer);
    let _ = writeln!(json, "  \"hot_keys\": {},", w.hot_keys);
    let _ = writeln!(json, "  \"zipf_exponent\": {},", w.zipf_exponent);
    let _ = writeln!(json, "  \"checkpoint_batch\": {},", w.checkpoint_batch);
    json.push_str("  \"modes\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"sync\": \"{}\", \"puts\": {}, \"throughput_puts_per_s\": {:.0}, \
             \"put_us\": {{\"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2}, \"p999\": {:.2}}}, \
             \"acknowledged\": {}, \"wal_bytes_at_crash\": {}, \"checkpoint_entries\": {}, \
             \"replayed_records\": {}, \"replay_ms\": {:.2}, \"reader_probes\": {}, \
             \"reader_hits\": {}, \"recovery_lost_acknowledged\": {}}}{}",
            o.policy,
            o.puts,
            o.puts as f64 / o.wall_s,
            percentile(&o.latencies_us, 50.0),
            percentile(&o.latencies_us, 95.0),
            percentile(&o.latencies_us, 99.0),
            percentile(&o.latencies_us, 99.9),
            o.acknowledged,
            o.wal_bytes_at_crash,
            o.checkpoint_entries,
            o.replayed_records,
            o.replay_ms,
            o.reader_probes,
            o.reader_hits,
            o.lost_acknowledged,
            if i + 1 == outcomes.len() { "" } else { "," },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"recovery_lost_acknowledged\": {total_lost}");
    json.push_str("}\n");
    fs::write(&args.out, &json).expect("write artifact");
    println!("  wrote {}", args.out);

    // This run's own durability audit is unconditional.
    assert_eq!(
        total_lost, 0,
        "acknowledged records were lost in recovery — the durability contract is broken"
    );

    // --check gates the *committed* artifact: zero loss on record, and
    // tail-first reporting (p99.9) present for every sync mode.
    if let Some(path) = &args.check {
        let committed = committed.expect("snapshot taken before the run");
        let mut failed = false;
        if extract_number(&committed, "", "\"recovery_lost_acknowledged\"") != Some(0.0) {
            eprintln!(
                "store-smoke FAIL: committed artifact {path} records lost acknowledged writes"
            );
            failed = true;
        }
        for mode in ["always", "batch:", "none"] {
            let anchor = format!("\"sync\": \"{mode}");
            match extract_number(&committed, &anchor, "\"p999\"") {
                Some(v) if v >= 0.0 => eprintln!(
                    "store-smoke ok: committed {mode}* put p99.9 = {v:.2} µs, \
                     lost_acknowledged = 0"
                ),
                _ => {
                    eprintln!(
                        "store-smoke FAIL: committed artifact {path} lacks p99.9 for \
                         sync mode {mode}*"
                    );
                    failed = true;
                }
            }
        }
        assert!(!failed, "store-smoke gate failed against {path}");
        eprintln!("store-smoke: all gates passed against {path}");
    }
}
