//! Regenerates the paper artifact; see `gals_bench::artifacts`.
fn main() {
    gals_bench::artifacts::table2();
}
