//! Throughput reporter: measures simulated-instructions/sec for the
//! three machine styles and sweep configurations/sec for the synchronous
//! design-space sweep, for both the event-driven fast loop and the
//! straightforward reference loop, plus the sweep-wide trace-sharing
//! speedup (pooled traces vs per-job stream regeneration) and the
//! batched lockstep-cohort speedup (K simulators advancing over one
//! prepared trace vs one job at a time), and emits the numbers as JSON.
//!
//! This feeds the checked-in `BENCH_sim.json` trajectory (schema v3):
//!
//! ```text
//! cargo run --release -p gals-bench --bin throughput -- --out BENCH_sim.json
//! ```
//!
//! CI runs it as a perf-smoke gate:
//!
//! ```text
//! cargo run --release -p gals-bench --bin throughput -- --check BENCH_sim.json
//! ```
//!
//! which exits non-zero when the measured `simulator_geomean_speedup`,
//! `simulator_min_speedup` (the per-benchmark floor — this is what
//! pins the adpcm_encode synchronous corner, the one workload where the
//! event-driven loop has nothing to skip), `sweep_trace_shared.speedup`,
//! or `sweep_batched.speedup` falls more than the tolerance (default
//! 15%, `--tolerance 0.25` to widen) below the committed artifact.
//!
//! Knobs: `GALS_BENCH_SIM_WINDOW` (default 60,000 instructions per
//! simulator measurement), `GALS_BENCH_SWEEP_WINDOW` (default 4,000
//! instructions per sweep run), plus the engine's `GALS_MCD_COHORT_WIDTH`
//! / `GALS_MCD_COHORT_CHUNK` for the batched section.

use std::fmt::Write as _;
use std::time::Instant;

use gals_core::{MachineConfig, McdConfig, Simulator, SyncConfig};
use gals_explore::{in_sync_winner_subset, Explorer, MeasureItem, ResultCache, SweepEngine};
use gals_workloads::suite;

/// PR 1's committed `sweep_sync.fast_configs_per_sec` (window 4,000,
/// one thread, the standard CI container class): the fixed baseline the
/// `speedup_vs_v1_sweep` trajectory metric is quoted against. Absolute
/// configs/sec only transfer between hosts of the same class — the
/// perf-smoke gate therefore checks the same-host ratios, and this
/// number exists to track the sweep-throughput trajectory across PRs.
const V1_SWEEP_CONFIGS_PER_SEC: f64 = 580.664;

const STYLES: [&str; 3] = ["synchronous", "program_adaptive", "phase_adaptive"];
const BENCHES: [&str; 3] = ["adpcm_encode", "gcc", "equake"];
/// Benchmarks for the sweep throughput measurements (a slice of the suite
/// keeps the reporter under a couple of minutes end to end).
const SWEEP_BENCHES: [&str; 4] = ["adpcm_encode", "gcc", "power", "art"];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn machine_for(style: &str) -> MachineConfig {
    match style {
        "synchronous" => MachineConfig::best_synchronous(),
        "program_adaptive" => MachineConfig::program_adaptive(McdConfig::smallest()),
        "phase_adaptive" => MachineConfig::phase_adaptive(McdConfig::smallest()),
        _ => unreachable!(),
    }
}

/// Best-of-`reps` wall time for one full simulation run.
fn time_run(machine: &MachineConfig, bench: &str, window: u64, reference: bool, reps: u32) -> f64 {
    let spec = suite::by_name(bench).expect("benchmark in suite");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sim = Simulator::new(machine.clone());
        if reference {
            sim = sim.use_reference_loop();
        }
        let mut stream = spec.stream();
        let t0 = Instant::now();
        let r = sim.run(&mut stream, window);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(r.committed, window);
        best = best.min(dt);
    }
    best
}

/// One timed synchronous-subset sweep; returns (runs, seconds).
fn time_sweep(window: u64, reference: bool) -> (usize, f64) {
    let suite: Vec<_> = SWEEP_BENCHES
        .iter()
        .map(|n| suite::by_name(n).expect("benchmark in suite"))
        .collect();
    let mut ex = Explorer::with_cache(window, window, ResultCache::in_memory());
    if reference {
        ex = ex.with_reference_simulator();
    }
    let t0 = Instant::now();
    let out = ex.sync_sweep(&suite).expect("sweep");
    let dt = t0.elapsed().as_secs_f64();
    (out.geomeans_ns.len() * suite.len(), dt)
}

/// The 512-run work list for the trace-sharing measurement: the same
/// 128-configuration synchronous subset `sync_sweep` uses, crossed with
/// the four sweep benchmarks — exactly the shape where N configurations
/// share one benchmark stream.
fn trace_sweep_work() -> Vec<MeasureItem> {
    let specs: Vec<_> = SWEEP_BENCHES
        .iter()
        .map(|n| suite::by_name(n).expect("benchmark in suite"))
        .collect();
    let configs: Vec<SyncConfig> = SyncConfig::enumerate()
        .into_iter()
        .filter(in_sync_winner_subset)
        .collect();
    let mut work = Vec::with_capacity(configs.len() * specs.len());
    for cfg in &configs {
        for spec in &specs {
            work.push(MeasureItem::sync(spec.clone(), *cfg));
        }
    }
    work
}

/// One timed trace-shared (or per-job-stream) sweep over a fresh
/// in-memory cache; returns (runs, seconds, pool hits). Cohorts are
/// pinned off so this section keeps measuring trace sharing alone.
fn time_trace_sweep(window: u64, pooled: bool) -> (usize, f64, u64) {
    let work = trace_sweep_work();
    let mut engine = SweepEngine::new(ResultCache::in_memory()).with_cohort_width(0);
    if !pooled {
        engine = engine.without_trace_pool();
    }
    let t0 = Instant::now();
    let out = engine.measure_owned(work, window);
    let dt = t0.elapsed().as_secs_f64();
    assert!(
        out.iter().all(|ns| ns.is_finite() && *ns > 0.0),
        "trace sweep produced an unusable runtime"
    );
    (out.len(), dt, engine.trace_pool_hits())
}

/// The same 512-run sweep through the default batched lockstep-cohort
/// engine; returns (runs, seconds, cohort width, chunk insts).
fn time_batched_sweep(window: u64) -> (usize, f64, usize, u64) {
    let work = trace_sweep_work();
    let engine = SweepEngine::new(ResultCache::in_memory());
    let (k, chunk) = (engine.cohort_width(), engine.cohort_chunk());
    let t0 = Instant::now();
    let out = engine.measure_owned(work, window);
    let dt = t0.elapsed().as_secs_f64();
    assert!(
        out.iter().all(|ns| ns.is_finite() && *ns > 0.0),
        "batched sweep produced an unusable runtime"
    );
    (out.len(), dt, k, chunk)
}

/// Pulls `"key": <number>` out of a flat-ish JSON text, searching after
/// the first occurrence of `anchor` (pass `""` to search from the top).
/// Hand-rolled on purpose: the committed artifact is produced by this
/// binary, so the shapes are known and no JSON dependency is needed.
fn extract_number(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let from = if anchor.is_empty() {
        0
    } else {
        text.find(anchor)? + anchor.len()
    };
    let rest = &text[from..];
    let kpos = rest.find(key)? + key.len();
    let rest = rest[kpos..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct Args {
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().collect();
    let grab = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    Args {
        out: grab("--out"),
        check: grab("--check"),
        tolerance: grab("--tolerance")
            .and_then(|t| t.parse().ok())
            .unwrap_or(0.15),
    }
}

fn main() {
    let args = parse_args();
    let sim_window = env_u64("GALS_BENCH_SIM_WINDOW", 60_000);
    let sweep_window = env_u64("GALS_BENCH_SWEEP_WINDOW", 4_000);
    // Restrict the sweep to the 128-configuration subset so the reporter
    // stays fast; throughput per configuration is what matters here.
    std::env::set_var("GALS_MCD_SYNC_SUBSET", "1");

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"gals-mcd-throughput-v3\",\n");
    let _ = writeln!(json, "  \"sim_window\": {sim_window},");

    // Simulator throughput matrix.
    eprintln!("simulator throughput ({sim_window} instructions per run):");
    let mut speedups: Vec<f64> = Vec::new();
    json.push_str("  \"simulator\": [\n");
    for (si, style) in STYLES.iter().enumerate() {
        let machine = machine_for(style);
        for (bi, bench) in BENCHES.iter().enumerate() {
            let fast_s = time_run(&machine, bench, sim_window, false, 2);
            let ref_s = time_run(&machine, bench, sim_window, true, 2);
            let fast_mips = sim_window as f64 / fast_s / 1e6;
            let ref_mips = sim_window as f64 / ref_s / 1e6;
            let speedup = ref_s / fast_s;
            speedups.push(speedup);
            eprintln!(
                "  {style:>16} {bench:<14} fast {fast_mips:7.2} Minst/s   \
                 reference {ref_mips:7.2} Minst/s   speedup {speedup:.2}x"
            );
            let _ = write!(
                json,
                "    {{\"style\": \"{style}\", \"benchmark\": \"{bench}\", \
                 \"fast_minst_per_sec\": {fast_mips:.3}, \
                 \"reference_minst_per_sec\": {ref_mips:.3}, \
                 \"speedup\": {speedup:.3}}}"
            );
            let last = si == STYLES.len() - 1 && bi == BENCHES.len() - 1;
            json.push_str(if last { "\n" } else { ",\n" });
        }
    }
    json.push_str("  ],\n");
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let min_speedup = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let _ = writeln!(json, "  \"simulator_geomean_speedup\": {geomean:.3},");
    let _ = writeln!(json, "  \"simulator_min_speedup\": {min_speedup:.3},");
    eprintln!("  geomean simulator speedup: {geomean:.2}x (min {min_speedup:.2}x)");

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Sweep throughput (the sweep_sync hot path end to end: work
    // stealing, sharded result cache, and the simulator itself).
    eprintln!("sweep_sync throughput ({sweep_window} instructions per configuration):");
    let (runs, fast_s) = time_sweep(sweep_window, false);
    let (runs_ref, ref_s) = time_sweep(sweep_window, true);
    assert_eq!(runs, runs_ref);
    let fast_cps = runs as f64 / fast_s;
    let ref_cps = runs as f64 / ref_s;
    let sweep_speedup = ref_s / fast_s;
    eprintln!(
        "  {runs} runs: fast {fast_cps:.1} configs/s   reference {ref_cps:.1} configs/s   \
         speedup {sweep_speedup:.2}x ({threads} threads)"
    );
    let _ = writeln!(
        json,
        "  \"sweep_sync\": {{\"runs\": {runs}, \"window\": {sweep_window}, \
         \"threads\": {threads}, \"fast_configs_per_sec\": {fast_cps:.3}, \
         \"reference_configs_per_sec\": {ref_cps:.3}, \"speedup\": {sweep_speedup:.3}}},"
    );

    // Trace-sharing speedup: the identical 512-run sweep with the trace
    // pool on (one stream materialization per benchmark, shared by all
    // 128 of its configurations) versus off (every job regenerates its
    // stream from RNG scratch — the pre-pool behaviour).
    eprintln!("sweep_trace_shared ({sweep_window} instructions per configuration):");
    let (truns, pooled_s, pool_hits) = time_trace_sweep(sweep_window, true);
    let (truns_b, perjob_s, _) = time_trace_sweep(sweep_window, false);
    assert_eq!(truns, truns_b);
    let pooled_cps = truns as f64 / pooled_s;
    let perjob_cps = truns as f64 / perjob_s;
    let trace_speedup = perjob_s / pooled_s;
    let vs_v1 = pooled_cps / V1_SWEEP_CONFIGS_PER_SEC;
    eprintln!(
        "  {truns} runs: pooled {pooled_cps:.1} configs/s   per-job streams {perjob_cps:.1} \
         configs/s   speedup {trace_speedup:.2}x   vs PR 1 sweep {vs_v1:.2}x \
         ({pool_hits} pool hits, {threads} threads)"
    );
    let _ = writeln!(
        json,
        "  \"sweep_trace_shared\": {{\"runs\": {truns}, \"window\": {sweep_window}, \
         \"threads\": {threads}, \"pool_hits\": {pool_hits}, \
         \"pooled_configs_per_sec\": {pooled_cps:.3}, \
         \"per_job_configs_per_sec\": {perjob_cps:.3}, \"speedup\": {trace_speedup:.3}, \
         \"v1_fast_configs_per_sec\": {V1_SWEEP_CONFIGS_PER_SEC}, \
         \"speedup_vs_v1_sweep\": {vs_v1:.3}}},"
    );

    // Batched lockstep cohorts: the identical 512-run sweep driven K
    // configurations at a time over one shared prepared trace, in
    // cache-resident chunks, versus the one-job-at-a-time pooled path
    // (the `pooled_s` measurement above, same host seconds apart).
    eprintln!("sweep_batched ({sweep_window} instructions per configuration):");
    let (bruns, batched_s, cohort_width, chunk) = time_batched_sweep(sweep_window);
    assert_eq!(bruns, truns);
    let batched_cps = bruns as f64 / batched_s;
    let batched_speedup = pooled_s / batched_s;
    let batched_vs_v1 = batched_cps / V1_SWEEP_CONFIGS_PER_SEC;
    eprintln!(
        "  {bruns} runs: batched {batched_cps:.1} configs/s (K={cohort_width}, chunk {chunk})   \
         vs solo pooled {pooled_cps:.1} configs/s   speedup {batched_speedup:.2}x   \
         vs PR 1 sweep {batched_vs_v1:.2}x ({threads} threads)"
    );
    let _ = writeln!(
        json,
        "  \"sweep_batched\": {{\"runs\": {bruns}, \"window\": {sweep_window}, \
         \"threads\": {threads}, \"cohort_width\": {cohort_width}, \
         \"chunk_insts\": {chunk}, \"batched_configs_per_sec\": {batched_cps:.3}, \
         \"solo_configs_per_sec\": {pooled_cps:.3}, \"speedup\": {batched_speedup:.3}, \
         \"speedup_vs_v1_sweep\": {batched_vs_v1:.3}}}"
    );
    json.push_str("}\n");

    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, &json).expect("write report");
        eprintln!("wrote {path}");
    }

    // Perf-smoke gate: compare the two headline speedups against the
    // committed artifact. Speedups are ratios of two measurements taken
    // on the same host seconds apart, so they transfer across machines
    // far better than absolute configs/sec.
    if let Some(path) = &args.check {
        let committed = std::fs::read_to_string(path).expect("read committed artifact");
        let mut failed = false;
        let checks = [
            (
                "simulator_geomean_speedup",
                geomean,
                extract_number(&committed, "", "\"simulator_geomean_speedup\""),
            ),
            (
                "simulator_min_speedup",
                min_speedup,
                extract_number(&committed, "", "\"simulator_min_speedup\""),
            ),
            (
                "sweep_trace_shared.speedup",
                trace_speedup,
                extract_number(&committed, "\"sweep_trace_shared\"", "\"speedup\""),
            ),
            (
                "sweep_batched.speedup",
                batched_speedup,
                extract_number(&committed, "\"sweep_batched\"", "\"speedup\""),
            ),
        ];
        for (name, measured, committed_val) in checks {
            let Some(want) = committed_val else {
                eprintln!("perf-smoke: {name} missing from {path} (schema v3 required)");
                failed = true;
                continue;
            };
            let floor = want * (1.0 - args.tolerance);
            if measured < floor {
                eprintln!(
                    "perf-smoke FAIL: {name} measured {measured:.3} < floor {floor:.3} \
                     (committed {want:.3}, tolerance {:.0}%)",
                    args.tolerance * 100.0
                );
                failed = true;
            } else {
                eprintln!(
                    "perf-smoke ok: {name} measured {measured:.3} >= floor {floor:.3} \
                     (committed {want:.3})"
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
