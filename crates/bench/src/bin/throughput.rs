//! Throughput reporter: measures simulated-instructions/sec for the
//! three machine styles and sweep configurations/sec for the synchronous
//! design-space sweep, for both the event-driven fast loop and the
//! straightforward reference loop, and emits the numbers as JSON.
//!
//! This feeds the checked-in `BENCH_sim.json` trajectory:
//!
//! ```text
//! cargo run --release -p gals-bench --bin throughput -- --out BENCH_sim.json
//! ```
//!
//! Knobs: `GALS_BENCH_SIM_WINDOW` (default 60,000 instructions per
//! simulator measurement), `GALS_BENCH_SWEEP_WINDOW` (default 4,000
//! instructions per sweep run).

use std::fmt::Write as _;
use std::time::Instant;

use gals_core::{MachineConfig, McdConfig, Simulator};
use gals_explore::{Explorer, ResultCache};
use gals_workloads::suite;

const STYLES: [&str; 3] = ["synchronous", "program_adaptive", "phase_adaptive"];
const BENCHES: [&str; 3] = ["adpcm_encode", "gcc", "equake"];
/// Benchmarks for the sweep throughput measurement (a slice of the suite
/// keeps the reporter under a couple of minutes end to end).
const SWEEP_BENCHES: [&str; 4] = ["adpcm_encode", "gcc", "power", "art"];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn machine_for(style: &str) -> MachineConfig {
    match style {
        "synchronous" => MachineConfig::best_synchronous(),
        "program_adaptive" => MachineConfig::program_adaptive(McdConfig::smallest()),
        "phase_adaptive" => MachineConfig::phase_adaptive(McdConfig::smallest()),
        _ => unreachable!(),
    }
}

/// Best-of-`reps` wall time for one full simulation run.
fn time_run(machine: &MachineConfig, bench: &str, window: u64, reference: bool, reps: u32) -> f64 {
    let spec = suite::by_name(bench).expect("benchmark in suite");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sim = Simulator::new(machine.clone());
        if reference {
            sim = sim.use_reference_loop();
        }
        let mut stream = spec.stream();
        let t0 = Instant::now();
        let r = sim.run(&mut stream, window);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(r.committed, window);
        best = best.min(dt);
    }
    best
}

/// One timed synchronous-subset sweep; returns (runs, seconds).
fn time_sweep(window: u64, reference: bool) -> (usize, f64) {
    let suite: Vec<_> = SWEEP_BENCHES
        .iter()
        .map(|n| suite::by_name(n).expect("benchmark in suite"))
        .collect();
    let mut ex = Explorer::with_cache(window, window, ResultCache::in_memory());
    if reference {
        ex = ex.with_reference_simulator();
    }
    let t0 = Instant::now();
    let out = ex.sync_sweep(&suite).expect("sweep");
    let dt = t0.elapsed().as_secs_f64();
    (out.geomeans_ns.len() * suite.len(), dt)
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
    };
    let sim_window = env_u64("GALS_BENCH_SIM_WINDOW", 60_000);
    let sweep_window = env_u64("GALS_BENCH_SWEEP_WINDOW", 4_000);
    // Restrict the sweep to the 128-configuration subset so the reporter
    // stays fast; throughput per configuration is what matters here.
    std::env::set_var("GALS_MCD_SYNC_SUBSET", "1");

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"gals-mcd-throughput-v1\",\n");
    let _ = writeln!(json, "  \"sim_window\": {sim_window},");

    // Simulator throughput matrix.
    eprintln!("simulator throughput ({sim_window} instructions per run):");
    let mut speedups: Vec<f64> = Vec::new();
    json.push_str("  \"simulator\": [\n");
    for (si, style) in STYLES.iter().enumerate() {
        let machine = machine_for(style);
        for (bi, bench) in BENCHES.iter().enumerate() {
            let fast_s = time_run(&machine, bench, sim_window, false, 2);
            let ref_s = time_run(&machine, bench, sim_window, true, 2);
            let fast_mips = sim_window as f64 / fast_s / 1e6;
            let ref_mips = sim_window as f64 / ref_s / 1e6;
            let speedup = ref_s / fast_s;
            speedups.push(speedup);
            eprintln!(
                "  {style:>16} {bench:<14} fast {fast_mips:7.2} Minst/s   \
                 reference {ref_mips:7.2} Minst/s   speedup {speedup:.2}x"
            );
            let _ = write!(
                json,
                "    {{\"style\": \"{style}\", \"benchmark\": \"{bench}\", \
                 \"fast_minst_per_sec\": {fast_mips:.3}, \
                 \"reference_minst_per_sec\": {ref_mips:.3}, \
                 \"speedup\": {speedup:.3}}}"
            );
            let last = si == STYLES.len() - 1 && bi == BENCHES.len() - 1;
            json.push_str(if last { "\n" } else { ",\n" });
        }
    }
    json.push_str("  ],\n");
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let _ = writeln!(json, "  \"simulator_geomean_speedup\": {geomean:.3},");
    eprintln!("  geomean simulator speedup: {geomean:.2}x");

    // Sweep throughput (the sweep_sync hot path end to end: work
    // stealing, sharded result cache, and the simulator itself).
    eprintln!("sweep_sync throughput ({sweep_window} instructions per configuration):");
    let (runs, fast_s) = time_sweep(sweep_window, false);
    let (runs_ref, ref_s) = time_sweep(sweep_window, true);
    assert_eq!(runs, runs_ref);
    let fast_cps = runs as f64 / fast_s;
    let ref_cps = runs as f64 / ref_s;
    let sweep_speedup = ref_s / fast_s;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "  {runs} runs: fast {fast_cps:.1} configs/s   reference {ref_cps:.1} configs/s   \
         speedup {sweep_speedup:.2}x ({threads} threads)"
    );
    let _ = writeln!(
        json,
        "  \"sweep_sync\": {{\"runs\": {runs}, \"window\": {sweep_window}, \
         \"threads\": {threads}, \"fast_configs_per_sec\": {fast_cps:.3}, \
         \"reference_configs_per_sec\": {ref_cps:.3}, \"speedup\": {sweep_speedup:.3}}}"
    );
    json.push_str("}\n");

    println!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write report");
        eprintln!("wrote {path}");
    }
}
