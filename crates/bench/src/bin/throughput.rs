//! Throughput reporter: measures simulated-instructions/sec for the
//! three machine styles and sweep configurations/sec for the synchronous
//! design-space sweep, for both the event-driven fast loop and the
//! straightforward reference loop, plus the sweep-wide trace-sharing
//! speedup (pooled traces vs per-job stream regeneration), the batched
//! lockstep-cohort speedup with cross-cohort interval memoization (every
//! configuration measured at two windows — the convergence-study shape —
//! vs solo one-job-at-a-time runs of the identical jobs), and the
//! cache-model residency (bytes the packed lazy tag arrays actually
//! allocate after a real run vs the old eager per-geometry layout), and
//! emits the numbers as JSON.
//!
//! This feeds the checked-in `BENCH_sim.json` trajectory (schema v4):
//!
//! ```text
//! cargo run --release -p gals-bench --bin throughput -- --out BENCH_sim.json
//! ```
//!
//! CI runs it as a perf-smoke gate:
//!
//! ```text
//! cargo run --release -p gals-bench --bin throughput -- --check BENCH_sim.json
//! ```
//!
//! which exits non-zero when the measured `simulator_geomean_speedup`,
//! `simulator_min_speedup` (the per-benchmark floor — this is what
//! pins the adpcm_encode synchronous corner, the one workload where the
//! event-driven loop has nothing to skip), `sweep_trace_shared.speedup`,
//! or `sweep_batched.speedup` falls more than the tolerance (default
//! 15%, `--tolerance 0.25` to widen) below the committed artifact, or
//! when `cache_model_bytes_per_sim` (lower is better — resident bytes
//! are deterministic for a fixed trace) grows more than the tolerance
//! above it.
//!
//! `--mem` prints only the per-style cache-model residency table (old
//! eager layout vs packed lazy layout) and exits.
//!
//! Knobs: `GALS_BENCH_SIM_WINDOW` (default 60,000 instructions per
//! simulator measurement), `GALS_BENCH_SWEEP_WINDOW` (default 4,000
//! instructions per sweep run), plus the engine's `GALS_MCD_COHORT_WIDTH`
//! / `GALS_MCD_INTERVAL_MEMO_SNAPS` for the batched section (the batched
//! section pins its cohort chunk to the half window so half-window jobs
//! pause exactly where the full-window jobs probe — the condition for
//! memoized snapshots to splice).

use std::fmt::Write as _;
use std::time::Instant;

use gals_common::env::parse_env_or;
use gals_core::{MachineConfig, McdConfig, Simulator, SyncConfig};
use gals_explore::{in_sync_winner_subset, Explorer, Job, MeasureItem, ResultCache, SweepEngine};
use gals_workloads::{suite, PreparedTrace, SharedTrace};

/// PR 1's committed `sweep_sync.fast_configs_per_sec` (window 4,000,
/// one thread, the standard CI container class): the fixed baseline the
/// `speedup_vs_v1_sweep` trajectory metric is quoted against. Absolute
/// configs/sec only transfer between hosts of the same class — the
/// perf-smoke gate therefore checks the same-host ratios, and this
/// number exists to track the sweep-throughput trajectory across PRs.
const V1_SWEEP_CONFIGS_PER_SEC: f64 = 580.664;

const STYLES: [&str; 3] = ["synchronous", "program_adaptive", "phase_adaptive"];
const BENCHES: [&str; 3] = ["adpcm_encode", "gcc", "equake"];
/// Benchmarks for the sweep throughput measurements (a slice of the suite
/// keeps the reporter under a couple of minutes end to end).
const SWEEP_BENCHES: [&str; 4] = ["adpcm_encode", "gcc", "power", "art"];

fn machine_for(style: &str) -> MachineConfig {
    match style {
        "synchronous" => MachineConfig::best_synchronous(),
        "program_adaptive" => MachineConfig::program_adaptive(McdConfig::smallest()),
        "phase_adaptive" => MachineConfig::phase_adaptive(McdConfig::smallest()),
        _ => unreachable!(),
    }
}

/// Best-of-`reps` wall time for one full simulation run.
fn time_run(machine: &MachineConfig, bench: &str, window: u64, reference: bool, reps: u32) -> f64 {
    let spec = suite::by_name(bench).expect("benchmark in suite");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sim = Simulator::new(machine.clone());
        if reference {
            sim = sim.use_reference_loop();
        }
        let mut stream = spec.stream();
        let t0 = Instant::now();
        let r = sim.run(&mut stream, window);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(r.committed, window);
        best = best.min(dt);
    }
    best
}

/// Post-run cache-model footprint for one style: the bytes the packed
/// lazy tag arrays actually hold after a real `window`-instruction run
/// of gcc (the most set-hungry sweep benchmark), next to the bytes the
/// old eager layout allocated up front for the same geometry. Both are
/// deterministic: same trace, same machine, same touched sets.
fn cache_model_bytes(style: &str, window: u64) -> (usize, usize) {
    let machine = machine_for(style);
    let spec = suite::by_name("gcc").expect("benchmark in suite");
    let slack = machine.params.max_in_flight() as u64 + 64;
    let trace = SharedTrace::capture(&mut spec.stream(), window + slack);
    let prep = PreparedTrace::new(&trace, machine.params.line_bytes);
    let mut sim = Simulator::new(machine);
    assert!(
        sim.run_chunk(&prep, window, u64::MAX),
        "residency run did not complete its window"
    );
    (
        sim.cache_model_resident_bytes(),
        sim.cache_model_eager_bytes(),
    )
}

/// One timed synchronous-subset sweep; returns (runs, seconds).
fn time_sweep(window: u64, reference: bool) -> (usize, f64) {
    let suite: Vec<_> = SWEEP_BENCHES
        .iter()
        .map(|n| suite::by_name(n).expect("benchmark in suite"))
        .collect();
    let mut ex = Explorer::with_cache(window, window, ResultCache::in_memory());
    if reference {
        ex = ex.with_reference_simulator();
    }
    let t0 = Instant::now();
    let out = ex.sync_sweep(&suite).expect("sweep");
    let dt = t0.elapsed().as_secs_f64();
    (out.geomeans_ns.len() * suite.len(), dt)
}

/// The 512-run work list for the trace-sharing measurement: the same
/// 128-configuration synchronous subset `sync_sweep` uses, crossed with
/// the four sweep benchmarks — exactly the shape where N configurations
/// share one benchmark stream.
fn trace_sweep_work() -> Vec<MeasureItem> {
    let specs: Vec<_> = SWEEP_BENCHES
        .iter()
        .map(|n| suite::by_name(n).expect("benchmark in suite"))
        .collect();
    let configs: Vec<SyncConfig> = SyncConfig::enumerate()
        .into_iter()
        .filter(in_sync_winner_subset)
        .collect();
    let mut work = Vec::with_capacity(configs.len() * specs.len());
    for cfg in &configs {
        for spec in &specs {
            work.push(MeasureItem::sync(spec.clone(), *cfg));
        }
    }
    work
}

/// One timed trace-shared (or per-job-stream) sweep over a fresh
/// in-memory cache; returns (runs, seconds, pool hits). Cohorts are
/// pinned off so this section keeps measuring trace sharing alone.
fn time_trace_sweep(window: u64, pooled: bool) -> (usize, f64, u64) {
    let work = trace_sweep_work();
    let mut engine = SweepEngine::new(ResultCache::in_memory()).with_cohort_width(0);
    if !pooled {
        engine = engine.without_trace_pool();
    }
    let t0 = Instant::now();
    let out = engine.measure_owned(work, window);
    let dt = t0.elapsed().as_secs_f64();
    assert!(
        out.iter().all(|ns| ns.is_finite() && *ns > 0.0),
        "trace sweep produced an unusable runtime"
    );
    (out.len(), dt, engine.trace_pool_hits())
}

/// The memoization shape for the batched section: every trace-sweep
/// configuration measured at two windows (W/2 and W) — the convergence
/// study every real sweep campaign runs — interleaved so one
/// configuration's two jobs land in the same cohort and share their
/// whole simulation prefix.
fn batched_sweep_jobs(window: u64) -> Vec<Job> {
    let mut jobs = Vec::new();
    for item in trace_sweep_work() {
        jobs.push(Job::new(item.clone(), window / 2));
        jobs.push(Job::new(item, window));
    }
    jobs
}

struct BatchedSweep {
    runs: usize,
    solo_s: f64,
    batched_s: f64,
    cohort_width: usize,
    chunk: u64,
    memo_hits: u64,
    memo_stores: u64,
}

/// Times the mixed-window job list through the batched lockstep-cohort
/// engine (chunk pinned to the half window, so a half-window job's one
/// pause lands exactly where a full-window job can splice its whole
/// shared prefix from the interval memo in a single snapshot) against a
/// cohort-free solo engine over the identical jobs — and asserts the
/// outcomes are bit-identical.
fn time_batched_sweep(window: u64) -> BatchedSweep {
    let chunk = (window / 2).max(64);
    let run = |engine: &SweepEngine| -> (Vec<Option<f64>>, f64) {
        let jobs = batched_sweep_jobs(window);
        let t0 = Instant::now();
        let out = engine.run_jobs(jobs, |_, _| {});
        let dt = t0.elapsed().as_secs_f64();
        (out.into_iter().map(|o| o.runtime_ns()).collect(), dt)
    };
    let solo = SweepEngine::new(ResultCache::in_memory()).with_cohort_width(0);
    let batched = SweepEngine::new(ResultCache::in_memory()).with_cohort_chunk(chunk);
    let (solo_out, solo_s) = run(&solo);
    let (batched_out, batched_s) = run(&batched);
    assert!(
        solo_out.iter().all(|ns| ns.is_some()),
        "batched sweep produced an unusable runtime"
    );
    assert_eq!(
        solo_out, batched_out,
        "batched cohort outcomes diverged from solo outcomes"
    );
    BatchedSweep {
        runs: solo_out.len(),
        solo_s,
        batched_s,
        cohort_width: batched.cohort_width(),
        chunk,
        memo_hits: batched.interval_memo_hits(),
        memo_stores: batched.interval_memo_stores(),
    }
}

/// Pulls `"key": <number>` out of a flat-ish JSON text, searching after
/// the first occurrence of `anchor` (pass `""` to search from the top).
/// Hand-rolled on purpose: the committed artifact is produced by this
/// binary, so the shapes are known and no JSON dependency is needed.
fn extract_number(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let from = if anchor.is_empty() {
        0
    } else {
        text.find(anchor)? + anchor.len()
    };
    let rest = &text[from..];
    let kpos = rest.find(key)? + key.len();
    let rest = rest[kpos..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct Args {
    out: Option<String>,
    check: Option<String>,
    mem: bool,
    tolerance: f64,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().collect();
    let grab = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    Args {
        out: grab("--out"),
        check: grab("--check"),
        mem: args.iter().any(|a| a == "--mem"),
        tolerance: grab("--tolerance")
            .and_then(|t| t.parse().ok())
            .unwrap_or(0.15),
    }
}

/// Measures and prints the per-style cache-model residency table;
/// returns (mean resident bytes, mean eager-layout bytes) per sim.
fn report_cache_model(window: u64) -> (usize, usize, String) {
    eprintln!("cache model residency ({window} instructions of gcc per style):");
    let mut resident_sum = 0usize;
    let mut eager_sum = 0usize;
    let mut rows = String::new();
    for (i, style) in STYLES.iter().enumerate() {
        let (resident, eager) = cache_model_bytes(style, window);
        resident_sum += resident;
        eager_sum += eager;
        let reduction = eager as f64 / resident as f64;
        eprintln!(
            "  {style:>16} packed lazy {resident:>9} B   eager layout {eager:>9} B   \
             {reduction:5.1}x smaller"
        );
        let _ = write!(
            rows,
            "    {{\"style\": \"{style}\", \"resident_bytes\": {resident}, \
             \"eager_layout_bytes\": {eager}, \"reduction\": {reduction:.2}}}"
        );
        rows.push_str(if i == STYLES.len() - 1 { "\n" } else { ",\n" });
    }
    (resident_sum / STYLES.len(), eager_sum / STYLES.len(), rows)
}

fn main() {
    let args = parse_args();
    let sim_window: u64 = parse_env_or("GALS_BENCH_SIM_WINDOW", 60_000u64);
    let sweep_window: u64 = parse_env_or("GALS_BENCH_SWEEP_WINDOW", 4_000u64);
    // Restrict the sweep to the 128-configuration subset so the reporter
    // stays fast; throughput per configuration is what matters here.
    // Set on the main thread before the sweep pool exists (the soundness
    // condition gals_common::env::set_var documents).
    gals_common::env::set_var("GALS_MCD_SYNC_SUBSET", "1");

    if args.mem {
        let (bytes_per_sim, eager_per_sim, _) = report_cache_model(sweep_window);
        let reduction = eager_per_sim as f64 / bytes_per_sim as f64;
        eprintln!(
            "  mean per sim: {bytes_per_sim} B resident vs {eager_per_sim} B eager \
             ({reduction:.1}x smaller)"
        );
        return;
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"gals-mcd-throughput-v4\",\n");
    let _ = writeln!(json, "  \"sim_window\": {sim_window},");

    // Simulator throughput matrix.
    eprintln!("simulator throughput ({sim_window} instructions per run):");
    let mut speedups: Vec<f64> = Vec::new();
    json.push_str("  \"simulator\": [\n");
    for (si, style) in STYLES.iter().enumerate() {
        let machine = machine_for(style);
        for (bi, bench) in BENCHES.iter().enumerate() {
            let fast_s = time_run(&machine, bench, sim_window, false, 2);
            let ref_s = time_run(&machine, bench, sim_window, true, 2);
            let fast_mips = sim_window as f64 / fast_s / 1e6;
            let ref_mips = sim_window as f64 / ref_s / 1e6;
            let speedup = ref_s / fast_s;
            speedups.push(speedup);
            eprintln!(
                "  {style:>16} {bench:<14} fast {fast_mips:7.2} Minst/s   \
                 reference {ref_mips:7.2} Minst/s   speedup {speedup:.2}x"
            );
            let _ = write!(
                json,
                "    {{\"style\": \"{style}\", \"benchmark\": \"{bench}\", \
                 \"fast_minst_per_sec\": {fast_mips:.3}, \
                 \"reference_minst_per_sec\": {ref_mips:.3}, \
                 \"speedup\": {speedup:.3}}}"
            );
            let last = si == STYLES.len() - 1 && bi == BENCHES.len() - 1;
            json.push_str(if last { "\n" } else { ",\n" });
        }
    }
    json.push_str("  ],\n");
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let min_speedup = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let _ = writeln!(json, "  \"simulator_geomean_speedup\": {geomean:.3},");
    let _ = writeln!(json, "  \"simulator_min_speedup\": {min_speedup:.3},");
    eprintln!("  geomean simulator speedup: {geomean:.2}x (min {min_speedup:.2}x)");

    // Cache-model residency: what a sweep pays per live simulator in tag
    // metadata, packed lazy layout vs the old eager one. Resident bytes
    // after a fixed trace are deterministic, so the gate can pin them.
    let (bytes_per_sim, eager_per_sim, cm_rows) = report_cache_model(sweep_window);
    let cm_reduction = eager_per_sim as f64 / bytes_per_sim as f64;
    eprintln!(
        "  mean per sim: {bytes_per_sim} B resident vs {eager_per_sim} B eager \
         ({cm_reduction:.1}x smaller)"
    );
    let _ = writeln!(
        json,
        "  \"cache_model\": {{\"window\": {sweep_window}, \"benchmark\": \"gcc\", \
         \"styles\": [\n{cm_rows}  ], \
         \"cache_model_bytes_per_sim\": {bytes_per_sim}, \
         \"eager_layout_bytes_per_sim\": {eager_per_sim}, \
         \"reduction\": {cm_reduction:.2}}},"
    );

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Sweep throughput (the sweep_sync hot path end to end: work
    // stealing, sharded result cache, and the simulator itself).
    eprintln!("sweep_sync throughput ({sweep_window} instructions per configuration):");
    let (runs, fast_s) = time_sweep(sweep_window, false);
    let (runs_ref, ref_s) = time_sweep(sweep_window, true);
    assert_eq!(runs, runs_ref);
    let fast_cps = runs as f64 / fast_s;
    let ref_cps = runs as f64 / ref_s;
    let sweep_speedup = ref_s / fast_s;
    eprintln!(
        "  {runs} runs: fast {fast_cps:.1} configs/s   reference {ref_cps:.1} configs/s   \
         speedup {sweep_speedup:.2}x ({threads} threads)"
    );
    let _ = writeln!(
        json,
        "  \"sweep_sync\": {{\"runs\": {runs}, \"window\": {sweep_window}, \
         \"threads\": {threads}, \"fast_configs_per_sec\": {fast_cps:.3}, \
         \"reference_configs_per_sec\": {ref_cps:.3}, \"speedup\": {sweep_speedup:.3}}},"
    );

    // Trace-sharing speedup: the identical 512-run sweep with the trace
    // pool on (one stream materialization per benchmark, shared by all
    // 128 of its configurations) versus off (every job regenerates its
    // stream from RNG scratch — the pre-pool behaviour).
    eprintln!("sweep_trace_shared ({sweep_window} instructions per configuration):");
    let (truns, pooled_s, pool_hits) = time_trace_sweep(sweep_window, true);
    let (truns_b, perjob_s, _) = time_trace_sweep(sweep_window, false);
    assert_eq!(truns, truns_b);
    let pooled_cps = truns as f64 / pooled_s;
    let perjob_cps = truns as f64 / perjob_s;
    let trace_speedup = perjob_s / pooled_s;
    let vs_v1 = pooled_cps / V1_SWEEP_CONFIGS_PER_SEC;
    eprintln!(
        "  {truns} runs: pooled {pooled_cps:.1} configs/s   per-job streams {perjob_cps:.1} \
         configs/s   speedup {trace_speedup:.2}x   vs PR 1 sweep {vs_v1:.2}x \
         ({pool_hits} pool hits, {threads} threads)"
    );
    let _ = writeln!(
        json,
        "  \"sweep_trace_shared\": {{\"runs\": {truns}, \"window\": {sweep_window}, \
         \"threads\": {threads}, \"pool_hits\": {pool_hits}, \
         \"pooled_configs_per_sec\": {pooled_cps:.3}, \
         \"per_job_configs_per_sec\": {perjob_cps:.3}, \"speedup\": {trace_speedup:.3}, \
         \"v1_fast_configs_per_sec\": {V1_SWEEP_CONFIGS_PER_SEC}, \
         \"speedup_vs_v1_sweep\": {vs_v1:.3}}},"
    );

    // Batched lockstep cohorts + interval memoization: every sweep
    // configuration at two windows (W/2 and W), driven K at a time over
    // one shared prepared trace with paused-snapshot splicing, versus a
    // cohort-free solo engine resolving the identical job list.
    eprintln!(
        "sweep_batched ({} + {sweep_window} instructions per configuration):",
        sweep_window / 2
    );
    let b = time_batched_sweep(sweep_window);
    let batched_cps = b.runs as f64 / b.batched_s;
    let solo_cps = b.runs as f64 / b.solo_s;
    let batched_speedup = b.solo_s / b.batched_s;
    eprintln!(
        "  {} runs: batched {batched_cps:.1} configs/s (K={}, chunk {}, {} memo hits / {} \
         stores)   vs solo {solo_cps:.1} configs/s   speedup {batched_speedup:.2}x \
         ({threads} threads)",
        b.runs, b.cohort_width, b.chunk, b.memo_hits, b.memo_stores
    );
    let _ = writeln!(
        json,
        "  \"sweep_batched\": {{\"runs\": {}, \"window_full\": {sweep_window}, \
         \"window_half\": {}, \"threads\": {threads}, \"cohort_width\": {}, \
         \"chunk_insts\": {}, \"memo_hits\": {}, \"memo_stores\": {}, \
         \"batched_configs_per_sec\": {batched_cps:.3}, \
         \"solo_configs_per_sec\": {solo_cps:.3}, \"speedup\": {batched_speedup:.3}}}",
        b.runs,
        sweep_window / 2,
        b.cohort_width,
        b.chunk,
        b.memo_hits,
        b.memo_stores
    );
    json.push_str("}\n");

    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, &json).expect("write report");
        eprintln!("wrote {path}");
    }

    // Perf-smoke gate: compare the headline ratios against the committed
    // artifact. Speedups are ratios of two measurements taken on the
    // same host seconds apart, so they transfer across machines far
    // better than absolute configs/sec; resident bytes are deterministic
    // outright. `lower_is_better` flips the gate for byte counts.
    if let Some(path) = &args.check {
        let committed = std::fs::read_to_string(path).expect("read committed artifact");
        let mut failed = false;
        let checks = [
            (
                "simulator_geomean_speedup",
                geomean,
                extract_number(&committed, "", "\"simulator_geomean_speedup\""),
                false,
            ),
            (
                "simulator_min_speedup",
                min_speedup,
                extract_number(&committed, "", "\"simulator_min_speedup\""),
                false,
            ),
            (
                "sweep_trace_shared.speedup",
                trace_speedup,
                extract_number(&committed, "\"sweep_trace_shared\"", "\"speedup\""),
                false,
            ),
            (
                "sweep_batched.speedup",
                batched_speedup,
                extract_number(&committed, "\"sweep_batched\"", "\"speedup\""),
                false,
            ),
            (
                "cache_model_bytes_per_sim",
                bytes_per_sim as f64,
                extract_number(&committed, "", "\"cache_model_bytes_per_sim\""),
                true,
            ),
        ];
        for (name, measured, committed_val, lower_is_better) in checks {
            let Some(want) = committed_val else {
                eprintln!("perf-smoke: {name} missing from {path} (schema v4 required)");
                failed = true;
                continue;
            };
            if lower_is_better {
                let ceiling = want * (1.0 + args.tolerance);
                if measured > ceiling {
                    eprintln!(
                        "perf-smoke FAIL: {name} measured {measured:.0} > ceiling {ceiling:.0} \
                         (committed {want:.0}, tolerance {:.0}%)",
                        args.tolerance * 100.0
                    );
                    failed = true;
                } else {
                    eprintln!(
                        "perf-smoke ok: {name} measured {measured:.0} <= ceiling {ceiling:.0} \
                         (committed {want:.0})"
                    );
                }
                continue;
            }
            let floor = want * (1.0 - args.tolerance);
            if measured < floor {
                eprintln!(
                    "perf-smoke FAIL: {name} measured {measured:.3} < floor {floor:.3} \
                     (committed {want:.3}, tolerance {:.0}%)",
                    args.tolerance * 100.0
                );
                failed = true;
            } else {
                eprintln!(
                    "perf-smoke ok: {name} measured {measured:.3} >= floor {floor:.3} \
                     (committed {want:.3})"
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
