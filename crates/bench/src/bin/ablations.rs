//! Ablation studies over the paper's fixed design constants (adaptation
//! interval, synchronization window, jitter, PLL lock time, mispredict
//! penalty). Run on a benchmark subset; see `gals_explore::ablation`.
use gals_explore::{ablation, ControlPolicy};
use gals_workloads::suite;

fn main() {
    let window: u64 = gals_common::env::parse_env_or("GALS_MCD_ABLATION_WINDOW", 40_000);
    let subset: Vec<_> = ["adpcm_encode", "gzip", "apsi", "em3d", "crafty", "art"]
        .iter()
        .map(|n| suite::by_name(n).expect("subset benchmark"))
        .collect();

    println!("ablation subset: 6 benchmarks, {window} instructions each\n");

    println!("adaptation interval (paper: 15000):");
    for p in ablation::interval_sweep(&subset, window, &[5_000, 15_000, 45_000]) {
        println!("  {:>12}  {:.1} ns", p.setting, p.geomean_ns);
    }

    println!("\nsynchronization window (paper: 30%):");
    for p in ablation::sync_window_sweep(&subset, window, &[0.0, 0.15, 0.3, 0.6]) {
        println!("  {:>12}  {:.1} ns", p.setting, p.geomean_ns);
    }

    println!("\nclock jitter (model: 1.0%):");
    for p in ablation::jitter_sweep(&subset, window, &[0.0, 0.01, 0.05]) {
        println!("  {:>12}  {:.1} ns", p.setting, p.geomean_ns);
    }

    println!("\nPLL lock-time scale (paper: 1.0x = 15 µs mean):");
    for p in ablation::pll_sweep(&subset, window, &[0.1, 1.0, 4.0]) {
        println!("  {:>12}  {:.1} ns", p.setting, p.geomean_ns);
    }

    println!("\nmispredict penalty:");
    for p in ablation::penalty_study(&subset, window) {
        println!("  {:>22}  {:.1} ns", p.setting, p.geomean_ns);
    }

    println!("\ncontrol policy (paper: argmin):");
    for p in ablation::policy_sweep(&subset, window, &ControlPolicy::BUILTIN) {
        println!("  {:>22}  {:.1} ns", p.setting, p.geomean_ns);
    }
}
