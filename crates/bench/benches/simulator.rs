//! Criterion benchmarks of end-to-end simulation throughput for the
//! three machine styles (instructions simulated per unit time), with the
//! event-driven fast loop and the straightforward reference loop side by
//! side so the hot-path speedup stays visible in every bench run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use gals_core::{MachineConfig, McdConfig, Simulator};
use gals_workloads::suite;

const WINDOW: u64 = 8_000;

fn bench_machine_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(WINDOW));
    for (style, machine) in [
        ("synchronous", MachineConfig::best_synchronous()),
        (
            "program_adaptive",
            MachineConfig::program_adaptive(McdConfig::smallest()),
        ),
        (
            "phase_adaptive",
            MachineConfig::phase_adaptive(McdConfig::smallest()),
        ),
    ] {
        for bench in ["adpcm_encode", "gcc"] {
            let spec = suite::by_name(bench).unwrap();
            for loop_kind in ["fast", "reference"] {
                group.bench_with_input(
                    BenchmarkId::new(style, format!("{bench}/{loop_kind}")),
                    &machine,
                    |b, machine| {
                        b.iter(|| {
                            let mut sim = Simulator::new(machine.clone());
                            if loop_kind == "reference" {
                                sim = sim.use_reference_loop();
                            }
                            let r = sim.run(&mut spec.stream(), WINDOW);
                            black_box(r.runtime)
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_machine_styles
}
criterion_main!(benches);
