//! Criterion benchmarks of end-to-end simulation throughput for the
//! three machine styles (instructions simulated per unit time).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use gals_core::{MachineConfig, McdConfig, Simulator};
use gals_workloads::suite;

const WINDOW: u64 = 8_000;

fn bench_machine_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(WINDOW));
    for (style, machine) in [
        ("synchronous", MachineConfig::best_synchronous()),
        (
            "program_adaptive",
            MachineConfig::program_adaptive(McdConfig::smallest()),
        ),
        (
            "phase_adaptive",
            MachineConfig::phase_adaptive(McdConfig::smallest()),
        ),
    ] {
        for bench in ["adpcm_encode", "gcc"] {
            let spec = suite::by_name(bench).unwrap();
            group.bench_with_input(
                BenchmarkId::new(style, bench),
                &machine,
                |b, machine| {
                    b.iter(|| {
                        let r = Simulator::new(machine.clone())
                            .run(&mut spec.stream(), WINDOW);
                        black_box(r.runtime)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_machine_styles
}
criterion_main!(benches);
