//! Criterion micro-benchmarks for the substrate components: these are the
//! per-event costs that bound overall simulation speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use gals_cache::{AccessKind, AccountingCache};
use gals_clock::DomainClock;
use gals_common::{DomainId, Hertz, SplitMix64};
use gals_core::IlpTracker;
use gals_isa::{ArchReg, DynInst, InstructionStream, OpClass};
use gals_predictor::{HybridPredictor, PredictorGeometry};
use gals_workloads::suite;

fn bench_cache(c: &mut Criterion) {
    let mut cache = AccountingCache::new(256 * 1024, 8, 64, 1, true).unwrap();
    let mut rng = SplitMix64::new(1);
    c.bench_function("accounting_cache_access", |b| {
        b.iter(|| {
            let addr = rng.next_below(1 << 20);
            black_box(cache.access(addr, AccessKind::Read))
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    let mut p = HybridPredictor::new(PredictorGeometry::for_capacity_kb(64).unwrap());
    let mut rng = SplitMix64::new(2);
    c.bench_function("hybrid_predictor_update", |b| {
        b.iter(|| {
            let pc = 0x1000 + (rng.next_below(512) * 4);
            black_box(p.update(pc, rng.chance(0.6)))
        })
    });
}

fn bench_clock(c: &mut Criterion) {
    let mut clk = DomainClock::new(
        DomainId::Integer,
        Hertz::from_ghz(1.52),
        0.01,
        SplitMix64::new(3),
    );
    c.bench_function("domain_clock_tick", |b| b.iter(|| black_box(clk.tick())));
}

fn bench_ilp_tracker(c: &mut Criterion) {
    let mut t = IlpTracker::new();
    let mut i = 0u64;
    c.bench_function("ilp_tracker_observe", |b| {
        b.iter(|| {
            let r = ArchReg::int(1 + (i % 12) as u8);
            let inst = DynInst::alu(0x1000 + i * 4, OpClass::IntAlu, r, [Some(r), None]);
            i += 1;
            t.observe(black_box(&inst));
            if t.complete() {
                black_box(t.decide([1.52, 1.05, 1.01, 0.97]));
            }
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    let spec = suite::by_name("gcc").unwrap();
    let mut stream = spec.stream();
    c.bench_function("synthetic_stream_next_inst", |b| {
        b.iter(|| black_box(stream.next_inst()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cache, bench_predictor, bench_clock, bench_ilp_tracker,
        bench_workload_generation
}
criterion_main!(benches);
