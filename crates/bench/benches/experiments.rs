//! Criterion benchmarks over the experiment machinery itself: how long
//! the paper's artifacts take to regenerate (timing tables are instant;
//! adaptive runs dominate), plus an ablation of the synchronization
//! window — the design choice DESIGN.md calls out for study.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use gals_core::{
    Dl2Config, ICacheConfig, MachineConfig, McdConfig, Simulator, TimingModel, Variant,
};
use gals_workloads::suite;

fn bench_timing_tables(c: &mut Criterion) {
    let model = TimingModel::default();
    c.bench_function("regen_frequency_tables", |b| {
        b.iter(|| {
            for &cfg in &Dl2Config::ALL {
                black_box(model.dl2_frequency(cfg, Variant::Adaptive));
                black_box(model.dl2_frequency(cfg, Variant::Optimal));
            }
            for &cfg in &ICacheConfig::ALL {
                black_box(model.icache_frequency(cfg));
            }
            for entries in (16..=64).step_by(4) {
                black_box(model.iq_frequency_at(entries));
            }
        })
    });
}

fn bench_phase_adaptive_run(c: &mut Criterion) {
    let spec = suite::by_name("apsi").unwrap();
    c.bench_function("phase_adaptive_apsi_10k", |b| {
        b.iter(|| {
            let r = Simulator::new(MachineConfig::phase_adaptive(McdConfig::smallest()))
                .run(&mut spec.stream(), 10_000);
            black_box(r.reconfigs.len())
        })
    });
}

/// Ablation: the Sjogren–Myers setup window (0% / 30% / 60% of the faster
/// period). The paper fixes 30%; this measures how sensitive MCD runtime
/// is to that choice.
fn bench_sync_window_ablation(c: &mut Criterion) {
    let spec = suite::by_name("gzip").unwrap();
    let mut group = c.benchmark_group("sync_window_ablation");
    for frac in [0.0, 0.3, 0.6] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}%", frac * 100.0)),
            &frac,
            |b, &frac| {
                let mut machine = MachineConfig::program_adaptive(McdConfig::smallest());
                machine.params.sync_threshold_frac = frac;
                b.iter(|| {
                    let r = Simulator::new(machine.clone()).run(&mut spec.stream(), 8_000);
                    black_box(r.runtime)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_timing_tables, bench_phase_adaptive_run, bench_sync_window_ablation
}
criterion_main!(benches);
